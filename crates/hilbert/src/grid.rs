//! Curve orderings over rectangular chunk grids.
//!
//! MLOC's chunk grids are rectangular and rarely power-of-two sided.
//! [`GridOrder`] embeds the grid in the smallest covering hypercube,
//! ranks the cells that actually exist, and exposes a bijection between
//! row-major cell ids and curve ranks. Only the grid's own cells are
//! materialized, so memory is `O(#chunks)`, not `O(2^(dims*order))`.

use crate::{hilbert, zorder};

/// Which space-filling curve to order chunks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CurveKind {
    /// Hilbert curve (MLOC default; strongest locality).
    Hilbert,
    /// Morton / Z-order curve (ablation baseline).
    ZOrder,
    /// Row-major order (no reordering at all; ablation baseline).
    RowMajor,
}

impl CurveKind {
    /// Stable textual name, used in reports and file headers.
    pub fn name(self) -> &'static str {
        match self {
            CurveKind::Hilbert => "hilbert",
            CurveKind::ZOrder => "zorder",
            CurveKind::RowMajor => "rowmajor",
        }
    }
}

/// A total order over the cells of a rectangular grid, following a
/// space-filling curve.
#[derive(Debug, Clone)]
pub struct GridOrder {
    extents: Vec<usize>,
    /// `rank_of[cell_id] = position of the cell along the curve`.
    rank_of: Vec<u32>,
    /// `cell_at[rank] = row-major cell id`.
    cell_at: Vec<u32>,
    kind: CurveKind,
}

impl GridOrder {
    /// Build the ordering for a grid with the given per-dimension
    /// extents (number of chunks along each axis).
    ///
    /// # Panics
    /// Panics if the grid is empty or has more than `u32::MAX` cells.
    pub fn new(extents: &[usize], kind: CurveKind) -> Self {
        assert!(!extents.is_empty(), "grid must have at least one dimension");
        assert!(
            extents.iter().all(|&e| e > 0),
            "grid extents must be positive"
        );
        let n: usize = extents.iter().product();
        assert!(n > 0 && n <= u32::MAX as usize, "grid too large");

        let dims = extents.len();
        let order = hilbert::order_for_extents(extents);

        // Key every existing cell by its curve index, then sort.
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(n);
        let mut coords = vec![0u32; dims];
        for cell in 0..n as u32 {
            let key = match kind {
                CurveKind::Hilbert => hilbert::coords_to_index(&coords, order),
                CurveKind::ZOrder => zorder::morton_encode(&coords, order),
                CurveKind::RowMajor => cell as u64,
            };
            keyed.push((key, cell));
            // Advance row-major coordinates (last axis fastest).
            for d in (0..dims).rev() {
                coords[d] += 1;
                if (coords[d] as usize) < extents[d] {
                    break;
                }
                coords[d] = 0;
            }
        }
        keyed.sort_unstable();

        let mut rank_of = vec![0u32; n];
        let mut cell_at = vec![0u32; n];
        for (rank, &(_, cell)) in keyed.iter().enumerate() {
            rank_of[cell as usize] = rank as u32;
            cell_at[rank] = cell;
        }
        GridOrder {
            extents: extents.to_vec(),
            rank_of,
            cell_at,
            kind,
        }
    }

    /// Build a *hierarchical* ordering: cells are grouped by
    /// resolution level (coarse lattice first), with curve order
    /// inside each level. This is the subset-based multi-resolution
    /// placement of MLOC's Figure 1 — a prefix of the file holds a
    /// uniformly spaced sample of the domain.
    pub fn hierarchical(extents: &[usize], num_levels: u32, kind: CurveKind) -> Self {
        let h = crate::hierarchy::HierarchicalOrder::new(extents, num_levels, kind);
        let n: usize = extents.iter().product();
        let mut rank_of = vec![0u32; n];
        let mut cell_at = vec![0u32; n];
        let mut rank = 0u32;
        for level in 0..h.num_levels() {
            for &cell in h.level(level) {
                rank_of[cell as usize] = rank;
                cell_at[rank as usize] = cell;
                rank += 1;
            }
        }
        GridOrder {
            extents: extents.to_vec(),
            rank_of,
            cell_at,
            kind,
        }
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.cell_at.len()
    }

    /// True when the grid has no cells (never happens for valid grids).
    pub fn is_empty(&self) -> bool {
        self.cell_at.is_empty()
    }

    /// The curve used to build this ordering.
    pub fn kind(&self) -> CurveKind {
        self.kind
    }

    /// Grid extents this ordering was built for.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Curve rank of a row-major cell id.
    pub fn rank_of(&self, cell: usize) -> usize {
        self.rank_of[cell] as usize
    }

    /// Row-major cell id at a curve rank.
    pub fn cell_at(&self, rank: usize) -> usize {
        self.cell_at[rank] as usize
    }

    /// Curve rank of a cell given by its grid coordinates.
    pub fn rank_of_coords(&self, coords: &[usize]) -> usize {
        self.rank_of(self.linearize(coords))
    }

    /// Row-major linear id of grid coordinates.
    pub fn linearize(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.extents.len());
        let mut lin = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.extents[d], "grid coordinate out of range");
            lin = lin * self.extents[d] + c;
        }
        lin
    }

    /// Grid coordinates of a row-major linear id.
    pub fn delinearize(&self, mut cell: usize) -> Vec<usize> {
        let mut coords = vec![0usize; self.extents.len()];
        for d in (0..self.extents.len()).rev() {
            coords[d] = cell % self.extents[d];
            cell /= self.extents[d];
        }
        coords
    }

    /// Iterate cells in curve order (row-major cell ids).
    pub fn iter_curve(&self) -> impl Iterator<Item = usize> + '_ {
        self.cell_at.iter().map(|&c| c as usize)
    }
}

/// Count the number of *contiguous runs* a set of curve ranks forms.
///
/// This is the seek count a query incurs when fetching those cells from
/// a file laid out in curve order — the quantity the Hilbert layout
/// minimizes. Used by tests and the ordering ablation bench.
pub fn contiguous_runs(mut ranks: Vec<usize>) -> usize {
    if ranks.is_empty() {
        return 0;
    }
    ranks.sort_unstable();
    ranks.dedup();
    let mut runs = 1;
    for w in ranks.windows(2) {
        if w[1] != w[0] + 1 {
            runs += 1;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijection_rect_grid() {
        for kind in [CurveKind::Hilbert, CurveKind::ZOrder, CurveKind::RowMajor] {
            let g = GridOrder::new(&[5, 3], kind);
            assert_eq!(g.len(), 15);
            let mut seen = [false; 15];
            for rank in 0..15 {
                let cell = g.cell_at(rank);
                assert!(!seen[cell]);
                seen[cell] = true;
                assert_eq!(g.rank_of(cell), rank);
            }
        }
    }

    #[test]
    fn rowmajor_is_identity() {
        let g = GridOrder::new(&[4, 4], CurveKind::RowMajor);
        for cell in 0..16 {
            assert_eq!(g.rank_of(cell), cell);
        }
    }

    #[test]
    fn linearize_roundtrip() {
        let g = GridOrder::new(&[3, 4, 5], CurveKind::Hilbert);
        for cell in 0..60 {
            let c = g.delinearize(cell);
            assert_eq!(g.linearize(&c), cell);
        }
    }

    #[test]
    fn hilbert_beats_rowmajor_on_square_subregions() {
        // A square sub-region of a 2-D grid should form fewer runs under
        // Hilbert order than under row-major order: this is the locality
        // property MLOC's spatial level relies on.
        let ext = [32usize, 32];
        let h = GridOrder::new(&ext, CurveKind::Hilbert);
        let r = GridOrder::new(&ext, CurveKind::RowMajor);
        let mut h_runs = 0usize;
        let mut r_runs = 0usize;
        for (r0, c0) in [(0usize, 0usize), (8, 8), (3, 17), (20, 5)] {
            let mut hr = Vec::new();
            let mut rr = Vec::new();
            for i in r0..r0 + 8 {
                for j in c0..c0 + 8 {
                    hr.push(h.rank_of_coords(&[i, j]));
                    rr.push(r.rank_of_coords(&[i, j]));
                }
            }
            h_runs += contiguous_runs(hr);
            r_runs += contiguous_runs(rr);
        }
        assert!(
            h_runs < r_runs,
            "hilbert runs {h_runs} not fewer than row-major runs {r_runs}"
        );
    }

    #[test]
    fn contiguous_runs_counts() {
        assert_eq!(contiguous_runs(vec![]), 0);
        assert_eq!(contiguous_runs(vec![3]), 1);
        assert_eq!(contiguous_runs(vec![1, 2, 3]), 1);
        assert_eq!(contiguous_runs(vec![3, 1, 2]), 1);
        assert_eq!(contiguous_runs(vec![1, 3, 5]), 3);
        assert_eq!(contiguous_runs(vec![1, 1, 2, 9]), 2);
    }

    #[test]
    fn hierarchical_order_puts_coarse_lattice_first() {
        let g = GridOrder::hierarchical(&[8, 8], 4, CurveKind::Hilbert);
        // It is a permutation.
        let mut cells: Vec<usize> = g.iter_curve().collect();
        cells.sort_unstable();
        assert_eq!(cells, (0..64).collect::<Vec<_>>());
        // The first 4 ranks are the stride-4 lattice (levels 0+1).
        for rank in 0..4 {
            let cell = g.cell_at(rank);
            let coords = g.delinearize(cell);
            assert!(
                coords.iter().all(|&c| c % 4 == 0),
                "rank {rank} -> {coords:?} off the coarse lattice"
            );
        }
        // Prefix of 16 = the stride-2 lattice.
        for rank in 0..16 {
            let coords = g.delinearize(g.cell_at(rank));
            assert!(coords.iter().all(|&c| c % 2 == 0));
        }
    }

    #[test]
    fn one_dimensional_grid() {
        let g = GridOrder::new(&[7], CurveKind::Hilbert);
        // In 1-D, Hilbert order is the identity.
        for cell in 0..7 {
            assert_eq!(g.rank_of(cell), cell);
        }
    }
}
