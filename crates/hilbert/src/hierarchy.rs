//! Hierarchical Hilbert ordering for subset-based multi-resolution.
//!
//! Paper §III-B.3: the subset-based multi-resolution approach stores
//! data "in the same resolution level together" using a hierarchical
//! Hilbert mapping (similar to Pascucci's hierarchical Z-order [13]).
//!
//! A cell belongs to resolution level `l` (0 = coarsest) when `l` is the
//! smallest level whose sub-lattice (stride `2^(L-l)` in every
//! dimension) contains it. Level 0 holds every `2^L`-th cell, level 1
//! adds the cells on the twice-finer lattice, and so on; the union of
//! levels `0..=l` is exactly the stride-`2^(L-l)` sub-lattice. Within a
//! level, cells are ordered by the Hilbert curve. Reading a prefix of
//! the levels therefore yields a uniformly-spaced sample of the domain
//! at increasing resolution.

use crate::grid::{CurveKind, GridOrder};

/// Multi-resolution ordering of a rectangular grid.
#[derive(Debug, Clone)]
pub struct HierarchicalOrder {
    /// `levels[l]` = row-major cell ids of level `l`, in curve order.
    levels: Vec<Vec<u32>>,
    extents: Vec<usize>,
}

impl HierarchicalOrder {
    /// Build the hierarchy with `num_levels` resolution levels over a
    /// grid with the given extents, ordering within levels by `kind`.
    ///
    /// # Panics
    /// Panics if `num_levels == 0` or the grid is degenerate.
    pub fn new(extents: &[usize], num_levels: u32, kind: CurveKind) -> Self {
        assert!(num_levels >= 1, "need at least one resolution level");
        let order = GridOrder::new(extents, kind);
        let max_level = num_levels - 1;

        let mut levels: Vec<Vec<u32>> = vec![Vec::new(); num_levels as usize];
        for rank in 0..order.len() {
            let cell = order.cell_at(rank);
            let coords = order.delinearize(cell);
            let level = cell_level(&coords, max_level);
            levels[level as usize].push(cell as u32);
        }
        HierarchicalOrder {
            levels,
            extents: extents.to_vec(),
        }
    }

    /// Number of resolution levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Grid extents.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Cells of a single level, in curve order.
    pub fn level(&self, l: usize) -> &[u32] {
        &self.levels[l]
    }

    /// Iterate all cells of levels `0..=l`, coarse levels first — the
    /// exact read order of a subset-based multi-resolution access.
    pub fn prefix(&self, l: usize) -> impl Iterator<Item = usize> + '_ {
        self.levels[..=l].iter().flatten().map(|&c| c as usize)
    }

    /// Total number of cells across all levels.
    pub fn total_cells(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// Resolution level of a cell: the smallest `l` such that every
/// coordinate is divisible by `2^(max_level - l)`.
fn cell_level(coords: &[usize], max_level: u32) -> u32 {
    for l in 0..max_level {
        let stride = 1usize << (max_level - l);
        if coords.iter().all(|&c| c % stride == 0) {
            return l;
        }
    }
    max_level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_complete_and_disjoint() {
        let h = HierarchicalOrder::new(&[8, 8], 4, CurveKind::Hilbert);
        assert_eq!(h.total_cells(), 64);
        let mut seen = [false; 64];
        for l in 0..h.num_levels() {
            for &c in h.level(l) {
                assert!(!seen[c as usize], "cell {c} in two levels");
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn level0_is_coarse_lattice() {
        let h = HierarchicalOrder::new(&[8, 8], 4, CurveKind::Hilbert);
        // max_level = 3 => level 0 stride = 8: only cell (0,0).
        assert_eq!(h.level(0).len(), 1);
        assert_eq!(h.level(0)[0], 0);
        // Levels 0+1 = stride-4 lattice: 2x2 = 4 cells.
        assert_eq!(h.level(0).len() + h.level(1).len(), 4);
        // Levels 0..=2 = stride-2 lattice: 4x4 = 16 cells.
        assert_eq!(h.prefix(2).count(), 16);
    }

    #[test]
    fn prefix_is_uniform_sample() {
        let h = HierarchicalOrder::new(&[8, 8], 4, CurveKind::Hilbert);
        let cells: Vec<usize> = h.prefix(1).collect();
        let g = GridOrder::new(&[8, 8], CurveKind::RowMajor);
        for cell in cells {
            let c = g.delinearize(cell);
            assert!(
                c[0].is_multiple_of(4) && c[1].is_multiple_of(4),
                "cell {c:?} off-lattice"
            );
        }
    }

    #[test]
    fn single_level_holds_everything() {
        let h = HierarchicalOrder::new(&[4, 4], 1, CurveKind::Hilbert);
        assert_eq!(h.level(0).len(), 16);
    }

    #[test]
    fn rectangular_grid_3d() {
        let h = HierarchicalOrder::new(&[4, 2, 6], 3, CurveKind::ZOrder);
        assert_eq!(h.total_cells(), 48);
        // Level 0 = stride 4: coords with all divisible by 4.
        // dim extents 4,2,6 -> coords (0,0,0), (0,0,4): 2 cells.
        assert_eq!(h.level(0).len(), 2);
    }
}
