//! N-dimensional Hilbert curve via Skilling's transpose algorithm.
//!
//! Reference: John Skilling, "Programming the Hilbert curve",
//! AIP Conference Proceedings 707, 381 (2004).
//!
//! The curve is defined on a hypercube of side `2^order` in `dims`
//! dimensions. Indices are `u64`, so `dims * order` must be at most 64.
//! MLOC's chunk grids comfortably fit this bound (e.g. a 262,144-chunk
//! grid per dimension in 2-D uses 36 index bits).

/// Maximum total index bits supported (`dims * order`).
pub const MAX_INDEX_BITS: u32 = 64;

fn check(dims: usize, order: u32) {
    assert!(dims >= 1, "hilbert: dims must be >= 1");
    assert!(
        (1..=32).contains(&order),
        "hilbert: order must be in 1..=32"
    );
    assert!(
        dims as u32 * order <= MAX_INDEX_BITS,
        "hilbert: dims * order = {} exceeds {MAX_INDEX_BITS} index bits",
        dims as u32 * order
    );
}

/// Convert axis coordinates into the "transpose" representation of the
/// Hilbert index, in place. After the call, `x` holds the index bits in
/// transposed (bit-interleaved-by-row) form.
fn axes_to_transpose(x: &mut [u32], order: u32) {
    let n = x.len();
    let m = 1u32 << (order - 1);

    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }

    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Inverse of [`axes_to_transpose`].
fn transpose_to_axes(x: &mut [u32], order: u32) {
    let n = x.len();
    let m = 2u32 << (order - 1);

    // Gray decode by H ^ (H/2).
    let t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;

    // Undo excess work.
    let mut q = 2u32;
    while q != m {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Pack a transposed representation into a scalar Hilbert index.
///
/// Bit `order-1-q` of every axis (axis 0 most significant within a
/// round) forms consecutive index bits, most significant round first.
fn transpose_to_index(x: &[u32], order: u32) -> u64 {
    let mut h: u64 = 0;
    for q in (0..order).rev() {
        for &xi in x {
            h = (h << 1) | u64::from((xi >> q) & 1);
        }
    }
    h
}

/// Unpack a scalar Hilbert index into transposed representation.
fn index_to_transpose(h: u64, dims: usize, order: u32) -> Vec<u32> {
    let mut x = vec![0u32; dims];
    let total = dims as u32 * order;
    for b in 0..total {
        let bit = (h >> (total - 1 - b)) & 1;
        let q = order - 1 - b / dims as u32;
        let i = (b % dims as u32) as usize;
        x[i] |= (bit as u32) << q;
    }
    x
}

/// Map axis coordinates to the Hilbert index on a `2^order`-sided
/// hypercube in `coords.len()` dimensions.
///
/// # Panics
/// Panics if any coordinate does not fit in `order` bits, or if
/// `dims * order > 64`.
pub fn coords_to_index(coords: &[u32], order: u32) -> u64 {
    check(coords.len(), order);
    for &c in coords {
        assert!(
            order == 32 || c < (1u32 << order),
            "hilbert: coordinate {c} out of range for order {order}"
        );
    }
    let mut x = coords.to_vec();
    axes_to_transpose(&mut x, order);
    transpose_to_index(&x, order)
}

/// Map a Hilbert index back to axis coordinates (inverse of
/// [`coords_to_index`]).
pub fn index_to_coords(index: u64, dims: usize, order: u32) -> Vec<u32> {
    check(dims, order);
    let mut x = index_to_transpose(index, dims, order);
    transpose_to_axes(&mut x, order);
    x
}

/// The smallest curve order whose hypercube covers a grid with the
/// given per-dimension extents.
pub fn order_for_extents(extents: &[usize]) -> u32 {
    let max = extents.iter().copied().max().unwrap_or(1).max(1);
    let mut order = 0u32;
    while (1usize << order) < max {
        order += 1;
    }
    order.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_2d_order1() {
        for h in 0..4u64 {
            let c = index_to_coords(h, 2, 1);
            assert_eq!(coords_to_index(&c, 1), h);
        }
    }

    #[test]
    fn curve_2d_order1_is_u_shape() {
        // The canonical first-order 2-D Hilbert curve visits a "U".
        let pts: Vec<Vec<u32>> = (0..4).map(|h| index_to_coords(h, 2, 1)).collect();
        // Consecutive points differ by exactly one step in one dimension.
        for w in pts.windows(2) {
            let d: u32 = w[0].iter().zip(&w[1]).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(d, 1, "non-adjacent consecutive points {:?}", pts);
        }
    }

    #[test]
    fn adjacency_2d_order4() {
        let order = 4;
        let n = 1u64 << (2 * order);
        let mut prev = index_to_coords(0, 2, order);
        for h in 1..n {
            let cur = index_to_coords(h, 2, order);
            let d: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(d, 1, "curve broke adjacency at index {h}");
            prev = cur;
        }
    }

    #[test]
    fn adjacency_3d_order3() {
        let order = 3;
        let n = 1u64 << (3 * order);
        let mut prev = index_to_coords(0, 3, order);
        for h in 1..n {
            let cur = index_to_coords(h, 3, order);
            let d: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(d, 1, "curve broke adjacency at index {h}");
            prev = cur;
        }
    }

    #[test]
    fn bijection_2d_order3() {
        let order = 3;
        let n = 1u64 << (2 * order);
        let mut seen = vec![false; n as usize];
        for h in 0..n {
            let c = index_to_coords(h, 2, order);
            let lin = (c[0] as u64) * (1 << order) + c[1] as u64;
            assert!(!seen[lin as usize], "coordinate visited twice");
            seen[lin as usize] = true;
            assert_eq!(coords_to_index(&c, order), h);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roundtrip_4d() {
        let order = 3;
        for h in (0..(1u64 << (4 * order))).step_by(97) {
            let c = index_to_coords(h, 4, order);
            assert_eq!(coords_to_index(&c, order), h);
        }
    }

    #[test]
    fn order_for_extents_works() {
        assert_eq!(order_for_extents(&[1]), 1);
        assert_eq!(order_for_extents(&[2, 2]), 1);
        assert_eq!(order_for_extents(&[3, 2]), 2);
        assert_eq!(order_for_extents(&[128, 128, 128]), 7);
        assert_eq!(order_for_extents(&[129, 1]), 8);
    }

    #[test]
    #[should_panic]
    fn coordinate_out_of_range_panics() {
        coords_to_index(&[4, 0], 2);
    }

    #[test]
    #[should_panic]
    fn too_many_index_bits_panics() {
        coords_to_index(&[0; 5], 20);
    }

    #[test]
    fn roundtrip_1d_is_identity() {
        for h in 0..32u64 {
            let c = index_to_coords(h, 1, 5);
            assert_eq!(c[0] as u64, h);
            assert_eq!(coords_to_index(&c, 5), h);
        }
    }
}
