//! Space-filling curves for MLOC.
//!
//! This crate provides the spatial-locality substrate used by the MLOC
//! layout framework (Gong et al., ICPP 2012):
//!
//! * [`hilbert`] — an n-dimensional Hilbert curve (Skilling's transpose
//!   algorithm), used to order data chunks on disk so that
//!   spatially-constrained accesses touch contiguous file extents.
//! * [`zorder`] — a Morton/Z-order curve, kept as an ablation baseline
//!   for the chunk-ordering design choice.
//! * [`grid`] — curve orderings over *rectangular* (non-power-of-two,
//!   non-square) chunk grids, which is what the storage layer actually
//!   consumes.
//! * [`hierarchy`] — the hierarchical Hilbert ordering used for
//!   subset-based multi-resolution access (paper §III-B.3).

//! # Example
//!
//! ```
//! use mloc_hilbert::{coords_to_index, index_to_coords};
//! use mloc_hilbert::grid::{CurveKind, GridOrder};
//!
//! // Point mapping on a 2^4-sided square.
//! let h = coords_to_index(&[5, 10], 4);
//! assert_eq!(index_to_coords(h, 2, 4), vec![5, 10]);
//!
//! // Order the chunks of a 6x4 grid along the Hilbert curve.
//! let order = GridOrder::new(&[6, 4], CurveKind::Hilbert);
//! let first_chunk = order.cell_at(0);
//! assert_eq!(order.rank_of(first_chunk), 0);
//! ```

pub mod grid;
pub mod hierarchy;
pub mod hilbert;
pub mod zorder;

pub use grid::{CurveKind, GridOrder};
pub use hierarchy::HierarchicalOrder;
pub use hilbert::{coords_to_index, index_to_coords};
pub use zorder::{morton_decode, morton_encode};
