//! Morton (Z-order) curve, used as an ablation baseline against the
//! Hilbert ordering in MLOC's spatial-layout level.

/// Interleave the bits of `coords` into a Morton code.
///
/// Bit `q` of axis `i` lands at index bit `q * dims + (dims - 1 - i)`,
/// i.e. axis 0 is the most significant within each bit round, matching
/// the convention of [`crate::hilbert::coords_to_index`].
///
/// # Panics
/// Panics if `coords.len() * order > 64` or a coordinate overflows.
pub fn morton_encode(coords: &[u32], order: u32) -> u64 {
    let dims = coords.len();
    assert!(dims >= 1 && dims as u32 * order <= 64);
    let mut code = 0u64;
    for q in (0..order).rev() {
        for &c in coords {
            assert!(
                order == 32 || c < (1u32 << order),
                "coordinate out of range"
            );
            code = (code << 1) | u64::from((c >> q) & 1);
        }
    }
    code
}

/// Inverse of [`morton_encode`].
pub fn morton_decode(code: u64, dims: usize, order: u32) -> Vec<u32> {
    assert!(dims >= 1 && dims as u32 * order <= 64);
    let mut coords = vec![0u32; dims];
    let total = dims as u32 * order;
    for b in 0..total {
        let bit = (code >> (total - 1 - b)) & 1;
        let q = order - 1 - b / dims as u32;
        coords[(b % dims as u32) as usize] |= (bit as u32) << q;
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_2d() {
        for code in 0..256u64 {
            let c = morton_decode(code, 2, 4);
            assert_eq!(morton_encode(&c, 4), code);
        }
    }

    #[test]
    fn roundtrip_3d() {
        for code in 0..512u64 {
            let c = morton_decode(code, 3, 3);
            assert_eq!(morton_encode(&c, 3), code);
        }
    }

    #[test]
    fn known_values_2d() {
        // Axis 0 is the "row" (more significant).
        assert_eq!(morton_encode(&[0, 0], 1), 0);
        assert_eq!(morton_encode(&[0, 1], 1), 1);
        assert_eq!(morton_encode(&[1, 0], 1), 2);
        assert_eq!(morton_encode(&[1, 1], 1), 3);
    }

    #[test]
    fn bijection_3d() {
        let mut seen = [false; 64];
        for code in 0..64u64 {
            let c = morton_decode(code, 3, 2);
            let lin = ((c[0] * 4 + c[1]) * 4 + c[2]) as usize;
            assert!(!seen[lin]);
            seen[lin] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
