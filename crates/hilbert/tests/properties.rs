//! Property-based tests for the space-filling-curve substrate.

use mloc_hilbert::grid::{contiguous_runs, CurveKind, GridOrder};
use mloc_hilbert::{coords_to_index, index_to_coords, morton_decode, morton_encode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hilbert_roundtrip_2d(h in 0u64..(1 << 16)) {
        let c = index_to_coords(h, 2, 8);
        prop_assert_eq!(coords_to_index(&c, 8), h);
    }

    #[test]
    fn hilbert_roundtrip_3d(h in 0u64..(1 << 15)) {
        let c = index_to_coords(h, 3, 5);
        prop_assert_eq!(coords_to_index(&c, 5), h);
    }

    #[test]
    fn hilbert_adjacent_indices_are_adjacent_cells(h in 0u64..((1 << 16) - 1)) {
        let a = index_to_coords(h, 2, 8);
        let b = index_to_coords(h + 1, 2, 8);
        let dist: u32 = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
        prop_assert_eq!(dist, 1);
    }

    #[test]
    fn morton_roundtrip(code in 0u64..(1 << 18)) {
        let c = morton_decode(code, 3, 6);
        prop_assert_eq!(morton_encode(&c, 6), code);
    }

    #[test]
    fn grid_order_is_permutation(rows in 1usize..20, cols in 1usize..20) {
        for kind in [CurveKind::Hilbert, CurveKind::ZOrder, CurveKind::RowMajor] {
            let g = GridOrder::new(&[rows, cols], kind);
            let mut cells: Vec<usize> = g.iter_curve().collect();
            cells.sort_unstable();
            let expect: Vec<usize> = (0..rows * cols).collect();
            prop_assert_eq!(cells, expect);
        }
    }

    #[test]
    fn runs_never_exceed_cell_count(ranks in proptest::collection::vec(0usize..1000, 0..200)) {
        let n = {
            let mut r = ranks.clone();
            r.sort_unstable();
            r.dedup();
            r.len()
        };
        let runs = contiguous_runs(ranks);
        prop_assert!(runs <= n);
        prop_assert!((n == 0) == (runs == 0));
    }
}
