//! Recording: the single-owner [`Collector`] and thread-safe [`Registry`].

use crate::histogram::Histogram;
use crate::profile::{Label, Profile, Span};
use std::sync::Mutex;
use std::time::Instant;

/// A per-rank (or per-pipeline) recorder.
///
/// A collector owns a stack of open spans plus flat counters and
/// histograms. It is deliberately not `Sync`: each rank records into its
/// own collector and the resulting [`Profile`]s are merged at gather,
/// which keeps the hot path lock-free and the merge deterministic. For
/// recording from worker threads, wrap one in a [`Registry`].
///
/// Every method checks `enabled` first; a disabled collector costs one
/// branch per call — no clocks are read and nothing allocates — so
/// instrumentation can stay compiled into release binaries.
#[derive(Debug)]
pub struct Collector {
    enabled: bool,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<OpenFrame>,
    counters: Vec<(&'static str, Label, u64)>,
    histograms: Vec<(&'static str, Label, Histogram)>,
}

#[derive(Debug)]
struct Node {
    name: &'static str,
    seconds: f64,
    count: u64,
    children: Vec<usize>,
}

#[derive(Debug)]
struct OpenFrame {
    node: usize,
    started: Instant,
}

impl Collector {
    /// A collector that records (`enabled = true`) or ignores every call.
    pub fn new(enabled: bool) -> Collector {
        Collector {
            enabled,
            nodes: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// A collector whose every method is a no-op.
    pub fn disabled() -> Collector {
        Collector::new(false)
    }

    /// Whether this collector records anything. Callers can branch on
    /// this to skip building expensive arguments.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn node_under(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&i) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(Node {
            name,
            seconds: 0.0,
            count: 0,
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.nodes[p].children.push(i),
            None => self.roots.push(i),
        }
        i
    }

    /// Open a span nested under the innermost open span. Pair with
    /// [`Collector::end`]; re-entering the same name accumulates into
    /// the same node.
    pub fn begin(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        let parent = self.stack.last().map(|f| f.node);
        let node = self.node_under(parent, name);
        self.stack.push(OpenFrame {
            node,
            started: Instant::now(),
        });
    }

    /// Close the innermost open span, folding its elapsed wall time in.
    pub fn end(&mut self) {
        if !self.enabled {
            return;
        }
        let frame = self.stack.pop().expect("Collector::end without begin");
        let node = &mut self.nodes[frame.node];
        node.seconds += frame.started.elapsed().as_secs_f64();
        node.count += 1;
    }

    /// Record a pre-measured duration as a child of the innermost open
    /// span. Used when the caller already timed the work (so the profile
    /// and its own metrics report the *identical* float).
    pub fn record(&mut self, name: &'static str, seconds: f64) {
        if !self.enabled {
            return;
        }
        let parent = self.stack.last().map(|f| f.node);
        let node = self.node_under(parent, name);
        let node = &mut self.nodes[node];
        node.seconds += seconds;
        node.count += 1;
    }

    /// Add to an unlabeled counter.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        self.count_labeled(name, Label::None, delta);
    }

    /// Add to a labeled counter.
    pub fn count_labeled(&mut self, name: &'static str, label: Label, delta: u64) {
        if !self.enabled {
            return;
        }
        if let Some((.., v)) = self
            .counters
            .iter_mut()
            .find(|(n, l, _)| *n == name && *l == label)
        {
            *v += delta;
        } else {
            self.counters.push((name, label, delta));
        }
    }

    /// Record one observation into a labeled histogram.
    pub fn observe(&mut self, name: &'static str, label: Label, value: f64) {
        if !self.enabled {
            return;
        }
        if let Some((.., h)) = self
            .histograms
            .iter_mut()
            .find(|(n, l, _)| *n == name && *l == label)
        {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.push((name, label, h));
        }
    }

    /// Snapshot into an immutable [`Profile`]. Any still-open spans are
    /// closed first (crediting elapsed time), so a collector dropped on
    /// an error path still yields a consistent tree.
    pub fn finish(mut self) -> Profile {
        while !self.stack.is_empty() {
            self.end();
        }
        let mut profile = Profile::default();
        for &r in &self.roots {
            let span = self.build_span(r);
            profile.spans.push(span);
        }
        for (name, label, value) in self.counters.drain(..) {
            profile.add_counter(name, label, value);
        }
        for (name, label, hist) in std::mem::take(&mut self.histograms) {
            profile.histogram_mut(name, label).merge(&hist);
        }
        profile
    }

    fn build_span(&self, i: usize) -> Span {
        let node = &self.nodes[i];
        Span {
            name: node.name,
            seconds: node.seconds,
            // A single collector is a single rank: its critical-path
            // time *is* its wall time.
            max_rank_seconds: node.seconds,
            count: node.count,
            children: node.children.iter().map(|&c| self.build_span(c)).collect(),
        }
    }
}

/// A thread-safe collector for code that records from worker threads
/// (e.g. the parallel build encode stage). Only flat recording is
/// exposed — hierarchical span stacks make no sense across threads —
/// plus [`Registry::record`] for attributing pre-measured stage times.
#[derive(Debug)]
pub struct Registry {
    inner: Mutex<Collector>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(true)
    }
}

impl Registry {
    /// A registry that records (or not, when `enabled` is false).
    pub fn new(enabled: bool) -> Registry {
        Registry {
            inner: Mutex::new(Collector::new(enabled)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Collector> {
        // A panicking recorder cannot corrupt counters; keep going.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add to an unlabeled counter.
    pub fn count(&self, name: &'static str, delta: u64) {
        self.lock().count(name, delta);
    }

    /// Add to a labeled counter.
    pub fn count_labeled(&self, name: &'static str, label: Label, delta: u64) {
        self.lock().count_labeled(name, label, delta);
    }

    /// Record one observation into a labeled histogram.
    pub fn observe(&self, name: &'static str, label: Label, value: f64) {
        self.lock().observe(name, label, value);
    }

    /// Record a pre-measured duration as a top-level span.
    pub fn record(&self, name: &'static str, seconds: f64) {
        self.lock().record(name, seconds);
    }

    /// Snapshot everything recorded so far into a [`Profile`].
    pub fn snapshot(&self) -> Profile {
        let collector = self.lock();
        let mut proxy = Collector::new(collector.enabled);
        proxy.nodes = collector
            .nodes
            .iter()
            .map(|n| Node {
                name: n.name,
                seconds: n.seconds,
                count: n.count,
                children: n.children.clone(),
            })
            .collect();
        proxy.roots = collector.roots.clone();
        proxy.counters = collector.counters.clone();
        proxy.histograms = collector.histograms.clone();
        drop(collector);
        proxy.finish()
    }

    /// Consume the registry into a [`Profile`].
    pub fn finish(self) -> Profile {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = Collector::disabled();
        assert!(!c.is_enabled());
        c.begin("a");
        c.record("b", 1.0);
        c.count("n", 5);
        c.observe("h", Label::None, 2.0);
        c.end();
        assert!(c.finish().is_empty());
    }

    #[test]
    fn spans_nest_and_reentry_accumulates() {
        let mut c = Collector::new(true);
        for _ in 0..3 {
            c.begin("outer");
            c.begin("inner");
            c.end();
            c.record("timed", 0.5);
            c.end();
        }
        let p = c.finish();
        let outer = p.span(&["outer"]).unwrap();
        assert_eq!(outer.count, 3);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(p.span(&["outer", "inner"]).unwrap().count, 3);
        let timed = p.span(&["outer", "timed"]).unwrap();
        assert_eq!(timed.count, 3);
        assert!((timed.seconds - 1.5).abs() < 1e-12);
        assert_eq!(timed.max_rank_seconds, timed.seconds);
        // Parent wall time covers its children.
        assert!(outer.seconds >= p.span(&["outer", "inner"]).unwrap().seconds);
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut c = Collector::new(true);
        c.begin("a");
        c.begin("b");
        let p = c.finish();
        assert_eq!(p.span(&["a"]).unwrap().count, 1);
        assert_eq!(p.span(&["a", "b"]).unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "end without begin")]
    fn unbalanced_end_panics() {
        let mut c = Collector::new(true);
        c.end();
    }

    #[test]
    fn sibling_spans_keep_first_seen_order() {
        let mut c = Collector::new(true);
        for name in ["plan", "gather", "plan"] {
            c.begin(name);
            c.end();
        }
        let p = c.finish();
        let names: Vec<&str> = p.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["plan", "gather"]);
        assert_eq!(p.span(&["plan"]).unwrap().count, 2);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Registry::default();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let reg = &reg;
                scope.spawn(move || {
                    for i in 0..100 {
                        reg.count("n", 1);
                        reg.count_labeled("per", Label::Index(t), 2);
                        reg.observe("h", Label::Name("x"), (i + 1) as f64);
                    }
                });
            }
        });
        let mid = reg.snapshot();
        assert_eq!(mid.counter("n", Label::None), 400);
        reg.record("stage", 1.25);
        let p = reg.finish();
        assert_eq!(p.counter("n", Label::None), 400);
        assert_eq!(p.counter_total("per"), 800);
        assert_eq!(p.histogram("h", Label::Name("x")).unwrap().count(), 400);
        assert_eq!(p.span(&["stage"]).unwrap().seconds, 1.25);
    }

    #[test]
    fn disabled_registry_snapshot_is_empty() {
        let reg = Registry::new(false);
        reg.count("n", 1);
        reg.record("s", 1.0);
        assert!(reg.snapshot().is_empty());
        assert!(reg.finish().is_empty());
    }
}
