//! Fixed-bucket base-2 histograms.
//!
//! Buckets are powers of two so that observation is integer math on the
//! exponent and two histograms merge by adding bucket counts — no
//! rebinning, no allocation, deterministic under any merge order.

/// Number of buckets. Bucket `i` covers `[2^(i+MIN_EXP), 2^(i+1+MIN_EXP))`;
/// the first and last buckets also absorb under- and overflow.
pub const NUM_BUCKETS: usize = 28;

/// Exponent of the lower edge of bucket 0 (`2^-14 ≈ 6.1e-5`). With 28
/// buckets the top edge is `2^14 = 16384`, which comfortably spans
/// compression ratios, span seconds, and per-unit byte counts scaled
/// to kilobytes.
const MIN_EXP: i32 = -14;

/// A fixed-size log2 histogram with count/sum/min/max summary stats.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index a value falls into. Non-positive and non-finite
    /// values clamp into the first bucket, huge values into the last.
    pub fn bucket_of(value: f64) -> usize {
        if !value.is_finite() || value <= 0.0 {
            return 0;
        }
        let exp = value.log2().floor() as i64 - MIN_EXP as i64;
        exp.clamp(0, NUM_BUCKETS as i64 - 1) as usize
    }

    /// The `[lo, hi)` value range bucket `i` nominally covers.
    pub fn bucket_range(i: usize) -> (f64, f64) {
        let lo = (2.0f64).powi(i as i32 + MIN_EXP);
        (lo, lo * 2.0)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one (commutative, associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Bucket 0 absorbs everything at or below 2^MIN_EXP, including
        // junk values.
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(-3.0), 0);
        assert_eq!(Histogram::bucket_of(f64::NAN), 0);
        assert_eq!(Histogram::bucket_of(f64::INFINITY), 0);
        assert_eq!(Histogram::bucket_of(1e-30), 0);
        // 1.0 = 2^0 sits at the lower edge of bucket -MIN_EXP.
        assert_eq!(Histogram::bucket_of(1.0), (-MIN_EXP) as usize);
        assert_eq!(Histogram::bucket_of(1.9), (-MIN_EXP) as usize);
        assert_eq!(Histogram::bucket_of(2.0), (-MIN_EXP) as usize + 1);
        // Overflow clamps to the last bucket.
        assert_eq!(Histogram::bucket_of(1e30), NUM_BUCKETS - 1);
        // Ranges are consistent with bucket_of for in-range values.
        for i in 1..NUM_BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_of(lo * 1.0001), i);
            assert_eq!(Histogram::bucket_of(hi * 0.9999), i);
        }
    }

    #[test]
    fn observe_and_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        for v in [0.25, 0.5, 1.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5.75);
        assert_eq!(h.min(), 0.25);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.buckets().iter().sum::<u64>(), 4);
    }

    #[test]
    fn merge_matches_combined_observation() {
        let values = [0.1, 0.9, 3.0, 700.0, 1e-9, 1e9];
        let mut whole = Histogram::new();
        for v in values {
            whole.observe(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
        }
        a.merge(&b);
        assert_eq!(a.buckets(), whole.buckets());
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }
}
