//! Zero-dependency observability for MLOC.
//!
//! Three layers, mirroring how MLOC executes work:
//!
//! * [`Collector`] — a single-owner recorder for one rank (or one build
//!   pipeline). It holds a stack of open hierarchical timing spans plus
//!   flat counters and [`Histogram`]s. Every method is a no-op when the
//!   collector is disabled, so instrumentation stays compiled in and the
//!   cost of "profiling off" is one branch per call — no `Instant::now()`,
//!   no allocation.
//! * [`Registry`] — a thread-safe wrapper around a collector for code
//!   that records from worker threads (the parallel build pipeline).
//! * [`Profile`] — an immutable snapshot: a span tree with per-rank
//!   maxima, sorted counters, and sorted histograms. Per-rank profiles
//!   are merged deterministically (rank order, children matched by name
//!   in first-seen order), so the replay and threaded executors produce
//!   structurally identical profiles for the same query. A profile can
//!   render itself as a human-readable table or as JSON.
//!
//! The crate has no dependencies, matching the `mloc_runtime` convention:
//! everything downstream of `mloc-core` can use it without pulling
//! anything new into the build.

mod collector;
mod histogram;
mod profile;

pub use collector::{Collector, Registry};
pub use histogram::{Histogram, NUM_BUCKETS};
pub use profile::{Counter, HistogramEntry, Label, Profile, Span};
