//! Immutable profile snapshots: span trees, counters, histograms.

use crate::histogram::Histogram;

/// Distinguishes instances of the same metric (per-bin, per-codec, …).
///
/// Labels are `Copy` and totally ordered so counters and histograms can
/// be kept sorted, which makes merged profiles deterministic regardless
/// of which rank observed what first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// Unlabeled: the metric has a single global instance.
    None,
    /// A small integer instance, e.g. a bin id or a rank.
    Index(u32),
    /// A named instance, e.g. a codec name.
    Name(&'static str),
}

impl Label {
    /// Render as a `[…]` suffix; empty for [`Label::None`].
    pub fn suffix(&self) -> String {
        match self {
            Label::None => String::new(),
            Label::Index(i) => format!("[{i}]"),
            Label::Name(s) => format!("[{s}]"),
        }
    }
}

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Static span name ("decompress", "io", …).
    pub name: &'static str,
    /// Wall seconds summed over every rank that entered this span.
    pub seconds: f64,
    /// Maximum seconds any single rank spent here — the critical-path
    /// contribution. Equal to `seconds` before any cross-rank merge.
    pub max_rank_seconds: f64,
    /// How many times the span was entered (or recorded), summed.
    pub count: u64,
    /// Child spans in first-seen order.
    pub children: Vec<Span>,
}

impl Span {
    fn new(name: &'static str) -> Span {
        Span {
            name,
            seconds: 0.0,
            max_rank_seconds: 0.0,
            count: 0,
            children: Vec::new(),
        }
    }

    /// Find a direct child by name.
    pub fn child(&self, name: &str) -> Option<&Span> {
        self.children.iter().find(|c| c.name == name)
    }

    fn child_mut(&mut self, name: &'static str) -> &mut Span {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(Span::new(name));
        self.children.last_mut().expect("just pushed")
    }

    fn merge_from(&mut self, other: Span) {
        self.seconds += other.seconds;
        self.max_rank_seconds = self.max_rank_seconds.max(other.max_rank_seconds);
        self.count += other.count;
        for child in other.children {
            self.child_mut(child.name).merge_from(child);
        }
    }
}

/// A named (and optionally labeled) monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    /// Static counter name ("io.bytes", "cache.hits", …).
    pub name: &'static str,
    /// Instance label.
    pub label: Label,
    /// Accumulated value.
    pub value: u64,
}

/// A named (and optionally labeled) histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramEntry {
    /// Static histogram name ("compress.ratio", …).
    pub name: &'static str,
    /// Instance label.
    pub label: Label,
    /// The bucket data.
    pub histogram: Histogram,
}

/// An immutable snapshot of everything a [`crate::Collector`] recorded.
///
/// Counters and histograms are kept sorted by `(name, label)`; top-level
/// and child spans keep first-seen order. Both invariants survive
/// [`Profile::merge`], which is how per-rank profiles from the replay
/// and threaded executors end up structurally identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Top-level spans in first-seen order.
    pub spans: Vec<Span>,
    /// Counters sorted by `(name, label)`.
    pub counters: Vec<Counter>,
    /// Histograms sorted by `(name, label)`.
    pub histograms: Vec<HistogramEntry>,
}

impl Profile {
    /// True when nothing was recorded (e.g. the collector was disabled).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Merge any number of profiles deterministically: spans matched by
    /// name (first-seen order preserved), `seconds`/`count` summed,
    /// `max_rank_seconds` maximized; counters summed; histograms merged.
    pub fn merge(parts: impl IntoIterator<Item = Profile>) -> Profile {
        let mut out = Profile::default();
        for part in parts {
            out.merge_from(part);
        }
        out
    }

    /// Fold another profile into this one (the binary form of
    /// [`Profile::merge`]).
    pub fn merge_from(&mut self, other: Profile) {
        for span in other.spans {
            self.top_span_mut(span.name).merge_from(span);
        }
        for c in other.counters {
            self.add_counter(c.name, c.label, c.value);
        }
        for h in other.histograms {
            self.histogram_mut(h.name, h.label).merge(&h.histogram);
        }
    }

    fn top_span_mut(&mut self, name: &'static str) -> &mut Span {
        if let Some(i) = self.spans.iter().position(|s| s.name == name) {
            return &mut self.spans[i];
        }
        self.spans.push(Span::new(name));
        self.spans.last_mut().expect("just pushed")
    }

    /// Look up a span by path, e.g. `&["rank", "decompress"]`.
    pub fn span(&self, path: &[&str]) -> Option<&Span> {
        let (first, rest) = path.split_first()?;
        let mut node = self.spans.iter().find(|s| s.name == *first)?;
        for name in rest {
            node = node.child(name)?;
        }
        Some(node)
    }

    /// Find-or-create the span at `path` and add one recording of
    /// `seconds` to it (single-rank semantics: `max_rank_seconds` grows
    /// with `seconds`).
    pub fn record_path(&mut self, path: &[&'static str], seconds: f64) {
        let node = self.span_at_mut(path);
        node.seconds += seconds;
        node.max_rank_seconds += seconds;
        node.count += 1;
    }

    /// Find-or-create the span at `path` and fold in one value per rank:
    /// `seconds` accumulates the sum, `max_rank_seconds` the max, and
    /// `count` the number of ranks.
    pub fn record_over_ranks(&mut self, path: &[&'static str], per_rank: &[f64]) {
        let node = self.span_at_mut(path);
        for &s in per_rank {
            node.seconds += s;
            node.max_rank_seconds = node.max_rank_seconds.max(s);
        }
        node.count += per_rank.len() as u64;
    }

    fn span_at_mut(&mut self, path: &[&'static str]) -> &mut Span {
        let (first, rest) = path.split_first().expect("span path cannot be empty");
        let mut node = self.top_span_mut(first);
        for name in rest {
            node = node.child_mut(name);
        }
        node
    }

    /// Add to a counter, creating it at zero if absent.
    pub fn add_counter(&mut self, name: &'static str, label: Label, delta: u64) {
        match self
            .counters
            .binary_search_by_key(&(name, label), |c| (c.name, c.label))
        {
            Ok(i) => self.counters[i].value += delta,
            Err(i) => self.counters.insert(
                i,
                Counter {
                    name,
                    label,
                    value: delta,
                },
            ),
        }
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str, label: Label) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map_or(0, |c| c.value)
    }

    /// Sum of every labeled instance of a counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Find-or-create a histogram entry.
    pub fn histogram_mut(&mut self, name: &'static str, label: Label) -> &mut Histogram {
        let i = match self
            .histograms
            .binary_search_by_key(&(name, label), |h| (h.name, h.label))
        {
            Ok(i) => i,
            Err(i) => {
                self.histograms.insert(
                    i,
                    HistogramEntry {
                        name,
                        label,
                        histogram: Histogram::new(),
                    },
                );
                i
            }
        };
        &mut self.histograms[i].histogram
    }

    /// Look up a histogram entry.
    pub fn histogram(&self, name: &str, label: Label) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.label == label)
            .map(|h| &h.histogram)
    }

    /// A timing-free signature of the profile: span paths with entry
    /// counts, counters with values, histograms with bucket counts.
    /// Two runs of the same query under different executors must agree
    /// on this string even though their wall-clock seconds differ.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        fn walk(out: &mut String, prefix: &str, span: &Span) {
            let path = if prefix.is_empty() {
                span.name.to_string()
            } else {
                format!("{prefix}/{}", span.name)
            };
            out.push_str(&format!("span {path} x{}\n", span.count));
            for c in &span.children {
                walk(out, &path, c);
            }
        }
        for s in &self.spans {
            walk(&mut out, "", s);
        }
        for c in &self.counters {
            out.push_str(&format!(
                "counter {}{} = {}\n",
                c.name,
                c.label.suffix(),
                c.value
            ));
        }
        for h in &self.histograms {
            let buckets: Vec<String> = h
                .histogram
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| format!("{i}:{n}"))
                .collect();
            out.push_str(&format!(
                "hist {}{} n={} [{}]\n",
                h.name,
                h.label.suffix(),
                h.histogram.count(),
                buckets.join(",")
            ));
        }
        out
    }

    /// Render as an indented human-readable table.
    pub fn render(&self) -> String {
        let mut rows: Vec<(String, f64, f64, u64)> = Vec::new();
        fn walk(rows: &mut Vec<(String, f64, f64, u64)>, depth: usize, span: &Span) {
            rows.push((
                format!("{}{}", "  ".repeat(depth), span.name),
                span.seconds,
                span.max_rank_seconds,
                span.count,
            ));
            for c in &span.children {
                walk(rows, depth + 1, c);
            }
        }
        for s in &self.spans {
            walk(&mut rows, 0, s);
        }
        let name_w = rows
            .iter()
            .map(|(n, ..)| n.len())
            .chain(std::iter::once("span".len()))
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        if !rows.is_empty() {
            out.push_str(&format!(
                "{:<name_w$}  {:>12}  {:>12}  {:>8}\n",
                "span", "seconds", "max-rank s", "count"
            ));
            for (name, secs, max_rank, count) in &rows {
                out.push_str(&format!(
                    "{name:<name_w$}  {secs:>12.6}  {max_rank:>12.6}  {count:>8}\n"
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for c in &self.counters {
                out.push_str(&format!("  {}{} = {}\n", c.name, c.label.suffix(), c.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {}{}  n={} mean={:.4} min={:.4} max={:.4}\n",
                    h.name,
                    h.label.suffix(),
                    h.histogram.count(),
                    h.histogram.mean(),
                    h.histogram.min(),
                    h.histogram.max()
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(empty profile)\n");
        }
        out
    }

    /// Serialize to JSON (hand-rolled; the crate has no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span_json(&mut out, s);
        }
        out.push_str("],\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"label\":{},\"value\":{}}}",
                json_string(c.name),
                label_json(c.label),
                c.value
            ));
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h.histogram.buckets().iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "{{\"name\":{},\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                json_string(h.name),
                label_json(h.label),
                h.histogram.count(),
                json_f64(h.histogram.sum()),
                json_f64(h.histogram.min()),
                json_f64(h.histogram.max()),
                buckets.join(",")
            ));
        }
        out.push_str("]}");
        out
    }
}

fn span_json(out: &mut String, span: &Span) {
    out.push_str(&format!(
        "{{\"name\":{},\"seconds\":{},\"max_rank_seconds\":{},\"count\":{},\"children\":[",
        json_string(span.name),
        json_f64(span.seconds),
        json_f64(span.max_rank_seconds),
        span.count
    ));
    for (i, c) in span.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_json(out, c);
    }
    out.push_str("]}");
}

fn label_json(label: Label) -> String {
    match label {
        Label::None => "null".to_string(),
        Label::Index(i) => i.to_string(),
        Label::Name(s) => json_string(s),
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Debug formatting is shortest-roundtrip and uses `e` notation
        // for extreme magnitudes — both are valid JSON numbers.
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_profile(io: f64, cpu: f64, bytes: u64) -> Profile {
        let mut p = Profile::default();
        p.record_path(&["rank", "data-read"], io);
        p.record_path(&["rank", "decompress"], cpu);
        p.add_counter("io.bytes", Label::None, bytes);
        p.histogram_mut("unit.bytes", Label::Name("deflate"))
            .observe(bytes as f64);
        p
    }

    #[test]
    fn merge_sums_seconds_and_maximizes_rank() {
        let merged = Profile::merge(vec![
            rank_profile(0.5, 0.1, 100),
            rank_profile(0.25, 0.4, 50),
        ]);
        let rank = merged.span(&["rank"]).unwrap();
        assert_eq!(rank.children.len(), 2);
        let dr = merged.span(&["rank", "data-read"]).unwrap();
        assert_eq!(dr.seconds, 0.75);
        assert_eq!(dr.max_rank_seconds, 0.5);
        assert_eq!(dr.count, 2);
        let dc = merged.span(&["rank", "decompress"]).unwrap();
        assert_eq!(dc.max_rank_seconds, 0.4);
        assert_eq!(merged.counter("io.bytes", Label::None), 150);
        assert_eq!(
            merged
                .histogram("unit.bytes", Label::Name("deflate"))
                .unwrap()
                .count(),
            2
        );
    }

    #[test]
    fn merge_is_structurally_deterministic() {
        // Same observations, issued in different orders per rank, still
        // produce the same structure when merged in rank order.
        let a = Profile::merge(vec![rank_profile(0.1, 0.2, 10), rank_profile(0.3, 0.4, 20)]);
        let b = Profile::merge(vec![rank_profile(0.9, 0.8, 10), rank_profile(0.7, 0.6, 20)]);
        assert_eq!(a.structure(), b.structure());
    }

    #[test]
    fn counters_stay_sorted() {
        let mut p = Profile::default();
        p.add_counter("z", Label::None, 1);
        p.add_counter("a", Label::Index(3), 2);
        p.add_counter("a", Label::Index(1), 4);
        p.add_counter("a", Label::Index(3), 10);
        let keys: Vec<(&str, Label)> = p.counters.iter().map(|c| (c.name, c.label)).collect();
        assert_eq!(
            keys,
            vec![
                ("a", Label::Index(1)),
                ("a", Label::Index(3)),
                ("z", Label::None)
            ]
        );
        assert_eq!(p.counter("a", Label::Index(3)), 12);
        assert_eq!(p.counter_total("a"), 16);
        assert_eq!(p.counter("missing", Label::None), 0);
    }

    #[test]
    fn record_over_ranks_tracks_max() {
        let mut p = Profile::default();
        p.record_over_ranks(&["io"], &[0.5, 1.5, 1.0]);
        p.record_over_ranks(&["io", "seek"], &[0.1, 0.2, 0.3]);
        let io = p.span(&["io"]).unwrap();
        assert!((io.seconds - 3.0).abs() < 1e-12);
        assert_eq!(io.max_rank_seconds, 1.5);
        assert_eq!(io.count, 3);
        assert_eq!(p.span(&["io", "seek"]).unwrap().max_rank_seconds, 0.3);
    }

    #[test]
    fn json_is_balanced_and_contains_fields() {
        let p = Profile::merge(vec![rank_profile(0.5, 0.1, 100)]);
        let json = p.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"spans\"",
            "\"counters\"",
            "\"histograms\"",
            "\"data-read\"",
            "\"io.bytes\"",
            "\"deflate\"",
            "\"max_rank_seconds\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn render_lists_spans_counters_histograms() {
        let p = Profile::merge(vec![rank_profile(0.5, 0.1, 100)]);
        let table = p.render();
        assert!(table.contains("rank"));
        assert!(table.contains("  data-read"));
        assert!(table.contains("io.bytes = 100"));
        assert!(table.contains("unit.bytes[deflate]"));
        assert!(Profile::default().render().contains("empty profile"));
    }

    #[test]
    fn span_lookup_misses_gracefully() {
        let p = rank_profile(0.1, 0.1, 1);
        assert!(p.span(&["rank", "nope"]).is_none());
        assert!(p.span(&["nope"]).is_none());
        assert!(p.span(&[]).is_none());
    }
}
