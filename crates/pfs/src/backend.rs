//! The storage backend trait and the per-rank tracing I/O handle.

use crate::retry::{op_token, RetryPolicy};
use crate::PfsError;

/// One entry of a submission batch: read `len` bytes of `file` at
/// `offset`. Requests in a batch are independent — they may overlap,
/// repeat, or target different files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRequest {
    /// File name.
    pub file: String,
    /// Byte offset of the read.
    pub offset: u64,
    /// Length of the read in bytes.
    pub len: u64,
}

impl ReadRequest {
    /// Build a request.
    pub fn new(file: impl Into<String>, offset: u64, len: u64) -> Self {
        ReadRequest {
            file: file.into(),
            offset,
            len,
        }
    }
}

/// A flat namespace of byte files, shared by all ranks.
///
/// MLOC only ever appends while building and reads while querying, so
/// the interface is deliberately minimal. Implementations must be
/// thread-safe: the MPI-like runtime drives one thread per rank.
pub trait StorageBackend: Send + Sync {
    /// Create (or truncate) a file.
    fn create(&self, name: &str) -> Result<(), PfsError>;

    /// Append bytes to a file, returning the offset they landed at.
    /// Creates the file when it does not exist.
    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError>;

    /// Read `len` bytes at `offset`.
    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError>;

    /// Service a submission batch of reads, returning one result per
    /// request **in submission order**. The default implementation is a
    /// sequential loop over [`Self::read`], so simple and wrapping
    /// backends (memory, simulator, fault injection) behave exactly as
    /// if the caller had issued the reads one by one — same bytes, same
    /// per-request error identity. Concurrent backends override this to
    /// service the whole batch at once.
    fn read_batch(&self, requests: &[ReadRequest]) -> Vec<Result<Vec<u8>, PfsError>> {
        requests
            .iter()
            .map(|r| self.read(&r.file, r.offset, r.len))
            .collect()
    }

    /// Flush a file's bytes to durable storage. Backends without a
    /// durability boundary (memory, simulator) treat this as a no-op;
    /// the directory backends fsync the handle. The build path calls
    /// this to order extent data before its footer and the meta file
    /// after everything else, extending the commit-marker discipline
    /// down to the device.
    fn sync(&self, _name: &str) -> Result<(), PfsError> {
        Ok(())
    }

    /// How many independent shards this backend spreads files over.
    /// Non-sharded backends report 1.
    fn shard_count(&self) -> usize {
        1
    }

    /// Which shard owns `name`. Always 0 for non-sharded backends;
    /// a [`crate::ShardRouter`] reports its routing decision so
    /// observability can attribute traffic per shard.
    fn shard_of(&self, _name: &str) -> usize {
        0
    }

    /// Delete a file. Only the repair path removes anything: builds
    /// append, queries read. Backends that cannot delete report an
    /// [`PfsError::Io`] error (the default) so `mloc repair` surfaces
    /// the limitation instead of pretending to roll back.
    fn remove(&self, name: &str) -> Result<(), PfsError> {
        Err(PfsError::Io(std::io::Error::other(format!(
            "backend does not support removing {name}"
        ))))
    }

    /// How many replicas of each file this backend keeps. Non-replicated
    /// backends report 1.
    fn replica_count(&self) -> usize {
        1
    }

    /// Which shard holds replica `replica` of `name`. Non-sharded
    /// backends always answer 0; a replicated [`crate::ShardRouter`]
    /// reports its placement so stats and repair can address one
    /// physical copy.
    fn replica_shard_of(&self, name: &str, _replica: usize) -> usize {
        self.shard_of(name)
    }

    /// Read straight from one replica, bypassing any fall-through
    /// masking, so repair can judge each physical copy on its own.
    /// Non-replicated backends serve their only copy.
    fn read_replica(
        &self,
        name: &str,
        _replica: usize,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, PfsError> {
        self.read(name, offset, len)
    }

    /// Size of one replica of a file (see [`Self::read_replica`]).
    fn len_replica(&self, name: &str, _replica: usize) -> Result<u64, PfsError> {
        self.len(name)
    }

    /// How many reads this backend has masked by falling through to a
    /// replica after the preferred copy failed. 0 for backends without
    /// replicas. Feeds the `io.read_repair` observability counter.
    fn read_repair_count(&self) -> u64 {
        0
    }

    /// Size of a file in bytes.
    fn len(&self, name: &str) -> Result<u64, PfsError>;

    /// Whether a file exists.
    fn exists(&self, name: &str) -> bool;

    /// Names of all files, sorted (for inventory/size reports).
    fn list(&self) -> Vec<String>;

    /// Total bytes stored across all files, plus the number of files
    /// whose size could not be read. Listed-but-unreadable files are
    /// counted as errors instead of being silently sized at 0, so a
    /// faulty backend cannot under-report storage.
    fn total_bytes_checked(&self) -> (u64, usize) {
        let mut total = 0u64;
        let mut errors = 0usize;
        for f in self.list() {
            match self.len(&f) {
                Ok(n) => total += n,
                Err(_) => errors += 1,
            }
        }
        (total, errors)
    }

    /// Total bytes stored across all files. Files whose size cannot
    /// be read are excluded; use [`Self::total_bytes_checked`] to
    /// detect that case.
    fn total_bytes(&self) -> u64 {
        self.total_bytes_checked().0
    }
}

/// Boxed backends delegate every method — including the ones with
/// defaults — so a `Box<dyn StorageBackend>` behaves exactly like the
/// backend it holds (batched reads stay batched, shard routing stays
/// visible). This lets callers pick a backend at runtime and still
/// wrap it in [`crate::FaultBackend`] or hand it to generic code.
impl<T: StorageBackend + ?Sized> StorageBackend for Box<T> {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        (**self).create(name)
    }
    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        (**self).append(name, data)
    }
    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        (**self).read(name, offset, len)
    }
    fn read_batch(&self, requests: &[ReadRequest]) -> Vec<Result<Vec<u8>, PfsError>> {
        (**self).read_batch(requests)
    }
    fn sync(&self, name: &str) -> Result<(), PfsError> {
        (**self).sync(name)
    }
    fn shard_count(&self) -> usize {
        (**self).shard_count()
    }
    fn shard_of(&self, name: &str) -> usize {
        (**self).shard_of(name)
    }
    fn remove(&self, name: &str) -> Result<(), PfsError> {
        (**self).remove(name)
    }
    fn replica_count(&self) -> usize {
        (**self).replica_count()
    }
    fn replica_shard_of(&self, name: &str, replica: usize) -> usize {
        (**self).replica_shard_of(name, replica)
    }
    fn read_replica(
        &self,
        name: &str,
        replica: usize,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, PfsError> {
        (**self).read_replica(name, replica, offset, len)
    }
    fn len_replica(&self, name: &str, replica: usize) -> Result<u64, PfsError> {
        (**self).len_replica(name, replica)
    }
    fn read_repair_count(&self) -> u64 {
        (**self).read_repair_count()
    }
    fn len(&self, name: &str) -> Result<u64, PfsError> {
        (**self).len(name)
    }
    fn exists(&self, name: &str) -> bool {
        (**self).exists(name)
    }
    fn list(&self) -> Vec<String> {
        (**self).list()
    }
    fn total_bytes_checked(&self) -> (u64, usize) {
        (**self).total_bytes_checked()
    }
}

/// One logical read operation, as recorded in a rank's I/O trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOp {
    /// File name.
    pub file: String,
    /// Byte offset of the read.
    pub offset: u64,
    /// Length of the read in bytes.
    pub len: u64,
    /// Whether the bytes were served from a cache above the PFS. The
    /// access still appears in the trace (the query *logically* needed
    /// the extent), but the simulator charges it nothing: no seek, no
    /// transfer, no open.
    pub cached: bool,
}

impl ReadOp {
    /// An uncached read op.
    pub fn new(file: impl Into<String>, offset: u64, len: u64) -> Self {
        ReadOp {
            file: file.into(),
            offset,
            len,
            cached: false,
        }
    }
}

/// Per-rank I/O handle: serves reads from the backend while recording
/// the [`ReadOp`] trace that the simulator later prices.
pub struct RankIo<'a> {
    backend: &'a dyn StorageBackend,
    trace: Vec<ReadOp>,
    retry: RetryPolicy,
    retries: u64,
    retry_wait_s: f64,
    retries_exhausted: u64,
    batch_depths: Vec<u64>,
}

impl<'a> RankIo<'a> {
    /// New handle over a backend, with no retries.
    pub fn new(backend: &'a dyn StorageBackend) -> Self {
        RankIo::with_retry(backend, RetryPolicy::none())
    }

    /// New handle that retries transient read errors per `policy`.
    pub fn with_retry(backend: &'a dyn StorageBackend, policy: RetryPolicy) -> Self {
        RankIo {
            backend,
            trace: Vec::new(),
            retry: policy,
            retries: 0,
            retry_wait_s: 0.0,
            retries_exhausted: 0,
            batch_depths: Vec::new(),
        }
    }

    /// Read and record one extent. Transient backend errors are
    /// retried per the handle's [`RetryPolicy`]; the logical read is
    /// traced once regardless of how many attempts it took (retries
    /// are accounted separately via [`Self::retries`] and the
    /// simulated [`Self::retry_wait_s`], never folded into the trace
    /// the cost simulator prices).
    pub fn read(&mut self, file: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        self.trace.push(ReadOp::new(file, offset, len));
        let token = op_token(file, offset, len);
        let mut attempt = 1u32;
        loop {
            match self.backend.read(file, offset, len) {
                Ok(buf) => return Ok(buf),
                Err(e) if e.is_transient() && self.retry.should_retry(attempt) => {
                    let wait = self.retry.backoff_s_for(attempt + 1, token);
                    if self.retry.budget_exceeded(self.retry_wait_s, wait) {
                        self.retries_exhausted += 1;
                        return Err(PfsError::RetriesExhausted {
                            file: file.to_string(),
                            offset,
                            attempts: attempt,
                            waited_s: self.retry_wait_s,
                        });
                    }
                    attempt += 1;
                    self.retries += 1;
                    self.retry_wait_s += wait;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Submit a batch of reads and return one result per request in
    /// submission order. Each logical read is traced once (exactly as
    /// [`Self::read`] would trace it); transient failures are retried
    /// per the handle's [`RetryPolicy`] by re-submitting only the
    /// still-failing requests as a smaller batch, with the same retry
    /// and simulated-backoff accounting the sequential path performs.
    pub fn read_batch(&mut self, requests: &[ReadRequest]) -> Vec<Result<Vec<u8>, PfsError>> {
        for r in requests {
            self.trace
                .push(ReadOp::new(r.file.clone(), r.offset, r.len));
        }
        self.batch_depths.push(requests.len() as u64);
        let mut out: Vec<Option<Result<Vec<u8>, PfsError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..requests.len()).collect();
        let mut attempt = 1u32;
        while !pending.is_empty() {
            let sub: Vec<ReadRequest> = pending.iter().map(|&i| requests[i].clone()).collect();
            let results = self.backend.read_batch(&sub);
            debug_assert_eq!(results.len(), sub.len());
            let mut still = Vec::new();
            for (&slot, res) in pending.iter().zip(results) {
                match res {
                    Err(e) if e.is_transient() && self.retry.should_retry(attempt) => {
                        still.push(slot);
                    }
                    other => out[slot] = Some(other),
                }
            }
            if still.is_empty() {
                break;
            }
            // Charge backoff per still-failing slot, in submission
            // order, so the total matches what the sequential path
            // would accumulate op by op. Slots whose next wait would
            // bust the per-query budget stop here with a typed error.
            let mut kept = Vec::new();
            for &slot in &still {
                let r = &requests[slot];
                let wait = self
                    .retry
                    .backoff_s_for(attempt + 1, op_token(&r.file, r.offset, r.len));
                if self.retry.budget_exceeded(self.retry_wait_s, wait) {
                    self.retries_exhausted += 1;
                    out[slot] = Some(Err(PfsError::RetriesExhausted {
                        file: r.file.clone(),
                        offset: r.offset,
                        attempts: attempt,
                        waited_s: self.retry_wait_s,
                    }));
                } else {
                    self.retries += 1;
                    self.retry_wait_s += wait;
                    kept.push(slot);
                }
            }
            if kept.is_empty() {
                break;
            }
            attempt += 1;
            pending = kept;
        }
        out.into_iter()
            .map(|o| o.expect("every batch slot resolved"))
            .collect()
    }

    /// Record an extent that a cache satisfied without touching the
    /// backend. It shows up in the trace (flagged [`ReadOp::cached`])
    /// so access patterns stay analyzable, but costs nothing in the
    /// simulator and is excluded from [`Self::bytes_read`].
    pub fn record_cached(&mut self, file: &str, offset: u64, len: u64) {
        self.trace.push(ReadOp {
            file: file.to_string(),
            offset,
            len,
            cached: true,
        });
    }

    /// Read a whole file and record it as one sequential extent.
    pub fn read_all(&mut self, file: &str) -> Result<Vec<u8>, PfsError> {
        let len = self.backend.len(file)?;
        self.read(file, 0, len)
    }

    /// The backend this handle reads from.
    pub fn backend(&self) -> &'a dyn StorageBackend {
        self.backend
    }

    /// Bytes actually read from the backend so far (cache-served
    /// extents excluded).
    pub fn bytes_read(&self) -> u64 {
        self.trace
            .iter()
            .filter(|op| !op.cached)
            .map(|op| op.len)
            .sum()
    }

    /// Transient-error retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reads abandoned because the per-query retry budget ran out
    /// (each surfaced a [`PfsError::RetriesExhausted`]).
    pub fn retries_exhausted(&self) -> u64 {
        self.retries_exhausted
    }

    /// Simulated backoff seconds accumulated by retries. Not part of
    /// the priced I/O trace — reported separately so fault-free and
    /// faulty runs of the same query stay byte- and cost-identical.
    pub fn retry_wait_s(&self) -> f64 {
        self.retry_wait_s
    }

    /// Depths (request counts) of the batches submitted so far, in
    /// submission order. Feeds the `io.batches` / `io.batch_depth`
    /// observability counters without coupling this crate to obs.
    pub fn batch_depths(&self) -> &[u64] {
        &self.batch_depths
    }

    /// Consume the handle and return the recorded trace.
    pub fn into_trace(self) -> Vec<ReadOp> {
        self.trace
    }

    /// Borrow the recorded trace.
    pub fn trace(&self) -> &[ReadOp] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBackend;

    #[test]
    fn rank_io_records_trace() {
        let be = MemBackend::new();
        be.append("f", &[1, 2, 3, 4, 5]).unwrap();
        let mut io = RankIo::new(&be);
        assert_eq!(io.read("f", 1, 3).unwrap(), vec![2, 3, 4]);
        assert_eq!(io.read_all("f").unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(io.bytes_read(), 8);
        let trace = io.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0], ReadOp::new("f", 1, 3));
        assert_eq!(trace[1], ReadOp::new("f", 0, 5));
    }

    #[test]
    fn retry_recovers_transient_faults_with_one_trace_entry() {
        use crate::fault::{FaultBackend, FaultPlan};
        let be = MemBackend::new();
        be.append("f", &[3u8; 1024]).unwrap();
        let fb = FaultBackend::new(be, FaultPlan::transient(11, 1.0, 2));

        // Without retries the injected error surfaces.
        let mut io = RankIo::new(&fb);
        assert!(io.read("f", 0, 1024).unwrap_err().is_transient());

        // With a patient policy the same read succeeds, traced once.
        fb.reset_attempts();
        let mut io = RankIo::with_retry(&fb, RetryPolicy::with_attempts(4));
        assert_eq!(io.read("f", 0, 1024).unwrap(), vec![3u8; 1024]);
        assert!(io.retries() >= 1);
        assert!(io.retry_wait_s() > 0.0);
        assert_eq!(io.bytes_read(), 1024);
        assert_eq!(io.trace().len(), 1, "retries must not inflate the trace");
    }

    #[test]
    fn retry_does_not_mask_permanent_errors() {
        let be = MemBackend::new();
        be.append("f", &[0u8; 8]).unwrap();
        let mut io = RankIo::with_retry(&be, RetryPolicy::with_attempts(5));
        let err = io.read("missing", 0, 4).unwrap_err();
        assert!(matches!(err, PfsError::NotFound(_)));
        let err = io.read("f", 4, 100).unwrap_err();
        assert!(matches!(err, PfsError::OutOfBounds { .. }));
        assert_eq!(io.retries(), 0);
    }

    #[test]
    fn total_bytes_checked_counts_unreadable_files() {
        use crate::fault::{FaultBackend, FaultPlan};
        let be = MemBackend::new();
        be.append("a", &[0u8; 10]).unwrap();
        be.append("b", &[0u8; 20]).unwrap();
        assert_eq!(be.total_bytes_checked(), (30, 0));
        assert_eq!(be.total_bytes(), 30);

        // A backend whose len() fails for a listed file must report
        // the error count, not silently size the file at zero.
        struct HalfBroken(MemBackend);
        impl StorageBackend for HalfBroken {
            fn create(&self, name: &str) -> Result<(), PfsError> {
                self.0.create(name)
            }
            fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
                self.0.append(name, data)
            }
            fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
                self.0.read(name, offset, len)
            }
            fn len(&self, name: &str) -> Result<u64, PfsError> {
                if name == "b" {
                    Err(PfsError::NotFound(name.to_string()))
                } else {
                    self.0.len(name)
                }
            }
            fn exists(&self, name: &str) -> bool {
                self.0.exists(name)
            }
            fn list(&self) -> Vec<String> {
                self.0.list()
            }
        }
        let be = MemBackend::new();
        be.append("a", &[0u8; 10]).unwrap();
        be.append("b", &[0u8; 20]).unwrap();
        let hb = HalfBroken(be);
        assert_eq!(hb.total_bytes_checked(), (10, 1));

        // And a lost file under FaultBackend is simply not listed.
        let be = MemBackend::new();
        be.append("a", &[0u8; 10]).unwrap();
        be.append("gone", &[0u8; 99]).unwrap();
        let mut plan = FaultPlan::none();
        plan.lost_files.push("gone".into());
        let fb = FaultBackend::new(be, plan);
        assert_eq!(fb.total_bytes_checked(), (10, 0));
    }

    #[test]
    fn batch_matches_sequential_and_traces_once_per_request() {
        let be = MemBackend::new();
        be.append("f", &(0u8..=255).collect::<Vec<_>>()).unwrap();
        let reqs = vec![
            ReadRequest::new("f", 0, 4),
            ReadRequest::new("f", 250, 6),
            ReadRequest::new("f", 0, 4),     // duplicate
            ReadRequest::new("f", 2, 6),     // overlap
            ReadRequest::new("f", 200, 100), // out of range
            ReadRequest::new("ghost", 0, 1), // missing
        ];
        let mut io = RankIo::new(&be);
        let batch = io.read_batch(&reqs);
        assert_eq!(batch.len(), 6);
        assert_eq!(batch[0].as_ref().unwrap(), &vec![0, 1, 2, 3]);
        assert_eq!(batch[2].as_ref().unwrap(), &vec![0, 1, 2, 3]);
        assert!(matches!(batch[4], Err(PfsError::OutOfBounds { .. })));
        assert!(matches!(batch[5], Err(PfsError::NotFound(_))));
        assert_eq!(io.trace().len(), 6, "one trace entry per request");
        assert_eq!(io.batch_depths(), &[6]);
    }

    #[test]
    fn batch_retries_only_failing_requests_with_sequential_accounting() {
        use crate::fault::{FaultBackend, FaultPlan};
        let be = MemBackend::new();
        be.append("f", &[5u8; 8192]).unwrap();
        let plan = FaultPlan::transient(11, 0.5, 2);
        let reqs: Vec<ReadRequest> = (0..16)
            .map(|i| ReadRequest::new("f", i * 512, 64))
            .collect();

        // Sequential reference run.
        let fb = FaultBackend::new(be, plan);
        let mut seq = RankIo::with_retry(&fb, RetryPolicy::with_attempts(4));
        let seq_res: Vec<_> = reqs
            .iter()
            .map(|r| seq.read(&r.file, r.offset, r.len).unwrap())
            .collect();
        let (seq_retries, seq_wait) = (seq.retries(), seq.retry_wait_s());
        assert!(seq_retries > 0, "plan injected nothing");

        // Batched run over a fresh fault schedule.
        fb.reset_attempts();
        let mut bat = RankIo::with_retry(&fb, RetryPolicy::with_attempts(4));
        let bat_res = bat.read_batch(&reqs);
        for (a, b) in seq_res.iter().zip(&bat_res) {
            assert_eq!(a, b.as_ref().unwrap());
        }
        assert_eq!(bat.retries(), seq_retries);
        assert!((bat.retry_wait_s() - seq_wait).abs() < 1e-12);
        assert_eq!(bat.trace().len(), seq.trace().len());
    }

    #[test]
    fn batch_gives_up_like_sequential_when_retries_exhausted() {
        use crate::fault::{FaultBackend, FaultPlan};
        let be = MemBackend::new();
        be.append("f", &[1u8; 4096]).unwrap();
        let fb = FaultBackend::new(be, FaultPlan::transient(11, 1.0, 3));
        let mut io = RankIo::with_retry(&fb, RetryPolicy::with_attempts(2));
        let res = io.read_batch(&[ReadRequest::new("f", 0, 1024)]);
        assert!(res[0].as_ref().unwrap_err().is_transient());
        assert_eq!(io.retries(), 1, "attempt budget of 2 = one retry");
    }

    #[test]
    fn jittered_batch_accounting_still_matches_sequential() {
        use crate::fault::{FaultBackend, FaultPlan};
        let be = MemBackend::new();
        be.append("f", &[5u8; 8192]).unwrap();
        let plan = FaultPlan::transient(11, 0.5, 2);
        let policy = RetryPolicy::with_attempts(4).with_jitter(97);
        let reqs: Vec<ReadRequest> = (0..16)
            .map(|i| ReadRequest::new("f", i * 512, 64))
            .collect();

        let fb = FaultBackend::new(be, plan);
        let mut seq = RankIo::with_retry(&fb, policy);
        let seq_res: Vec<_> = reqs
            .iter()
            .map(|r| seq.read(&r.file, r.offset, r.len).unwrap())
            .collect();
        assert!(seq.retries() > 0, "plan injected nothing");

        fb.reset_attempts();
        let mut bat = RankIo::with_retry(&fb, policy);
        let bat_res = bat.read_batch(&reqs);
        for (a, b) in seq_res.iter().zip(&bat_res) {
            assert_eq!(a, b.as_ref().unwrap());
        }
        assert_eq!(bat.retries(), seq.retries());
        assert!(
            (bat.retry_wait_s() - seq.retry_wait_s()).abs() < 1e-12,
            "jittered per-op waits must sum identically across paths"
        );
    }

    #[test]
    fn exhausted_budget_surfaces_typed_error_in_both_paths() {
        use crate::fault::{FaultBackend, FaultPlan};
        let be = MemBackend::new();
        be.append("f", &[1u8; 4096]).unwrap();
        // Every read fails 3 times; the budget only covers the first
        // retry's 1ms backoff, so the second wait busts it.
        let fb = FaultBackend::new(be, FaultPlan::transient(11, 1.0, 3));
        let policy = RetryPolicy::with_attempts(8).with_budget_s(0.0015);

        let mut io = RankIo::with_retry(&fb, policy);
        let err = io.read("f", 0, 1024).unwrap_err();
        assert!(err.is_retries_exhausted(), "got {err}");
        assert!(!err.is_transient(), "budget exhaustion must not re-retry");
        assert_eq!(io.retries_exhausted(), 1);
        assert_eq!(io.retries(), 1, "one retry fit in the budget");

        fb.reset_attempts();
        let mut io = RankIo::with_retry(&fb, policy);
        let res = io.read_batch(&[ReadRequest::new("f", 0, 1024)]);
        assert!(res[0].as_ref().unwrap_err().is_retries_exhausted());
        assert_eq!(io.retries_exhausted(), 1);

        // A generous budget recovers the same read fine.
        fb.reset_attempts();
        let mut io = RankIo::with_retry(&fb, RetryPolicy::with_attempts(8).with_budget_s(1.0));
        assert_eq!(io.read("f", 0, 1024).unwrap(), vec![1u8; 1024]);
        assert_eq!(io.retries_exhausted(), 0);
    }

    #[test]
    fn cached_records_are_traced_but_not_counted() {
        let be = MemBackend::new();
        be.append("f", &[0u8; 64]).unwrap();
        let mut io = RankIo::new(&be);
        io.read("f", 0, 16).unwrap();
        io.record_cached("f", 16, 32);
        assert_eq!(io.bytes_read(), 16);
        let trace = io.into_trace();
        assert_eq!(trace.len(), 2);
        assert!(!trace[0].cached);
        assert!(trace[1].cached);
        assert_eq!(trace[1].len, 32);
    }
}
