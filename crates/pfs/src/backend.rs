//! The storage backend trait and the per-rank tracing I/O handle.

use crate::PfsError;

/// A flat namespace of byte files, shared by all ranks.
///
/// MLOC only ever appends while building and reads while querying, so
/// the interface is deliberately minimal. Implementations must be
/// thread-safe: the MPI-like runtime drives one thread per rank.
pub trait StorageBackend: Send + Sync {
    /// Create (or truncate) a file.
    fn create(&self, name: &str) -> Result<(), PfsError>;

    /// Append bytes to a file, returning the offset they landed at.
    /// Creates the file when it does not exist.
    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError>;

    /// Read `len` bytes at `offset`.
    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError>;

    /// Size of a file in bytes.
    fn len(&self, name: &str) -> Result<u64, PfsError>;

    /// Whether a file exists.
    fn exists(&self, name: &str) -> bool;

    /// Names of all files, sorted (for inventory/size reports).
    fn list(&self) -> Vec<String>;

    /// Total bytes stored across all files.
    fn total_bytes(&self) -> u64 {
        self.list().iter().map(|f| self.len(f).unwrap_or(0)).sum()
    }
}

/// One logical read operation, as recorded in a rank's I/O trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOp {
    /// File name.
    pub file: String,
    /// Byte offset of the read.
    pub offset: u64,
    /// Length of the read in bytes.
    pub len: u64,
    /// Whether the bytes were served from a cache above the PFS. The
    /// access still appears in the trace (the query *logically* needed
    /// the extent), but the simulator charges it nothing: no seek, no
    /// transfer, no open.
    pub cached: bool,
}

impl ReadOp {
    /// An uncached read op.
    pub fn new(file: impl Into<String>, offset: u64, len: u64) -> Self {
        ReadOp {
            file: file.into(),
            offset,
            len,
            cached: false,
        }
    }
}

/// Per-rank I/O handle: serves reads from the backend while recording
/// the [`ReadOp`] trace that the simulator later prices.
pub struct RankIo<'a> {
    backend: &'a dyn StorageBackend,
    trace: Vec<ReadOp>,
}

impl<'a> RankIo<'a> {
    /// New handle over a backend.
    pub fn new(backend: &'a dyn StorageBackend) -> Self {
        RankIo {
            backend,
            trace: Vec::new(),
        }
    }

    /// Read and record one extent.
    pub fn read(&mut self, file: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        self.trace.push(ReadOp::new(file, offset, len));
        self.backend.read(file, offset, len)
    }

    /// Record an extent that a cache satisfied without touching the
    /// backend. It shows up in the trace (flagged [`ReadOp::cached`])
    /// so access patterns stay analyzable, but costs nothing in the
    /// simulator and is excluded from [`Self::bytes_read`].
    pub fn record_cached(&mut self, file: &str, offset: u64, len: u64) {
        self.trace.push(ReadOp {
            file: file.to_string(),
            offset,
            len,
            cached: true,
        });
    }

    /// Read a whole file and record it as one sequential extent.
    pub fn read_all(&mut self, file: &str) -> Result<Vec<u8>, PfsError> {
        let len = self.backend.len(file)?;
        self.read(file, 0, len)
    }

    /// The backend this handle reads from.
    pub fn backend(&self) -> &'a dyn StorageBackend {
        self.backend
    }

    /// Bytes actually read from the backend so far (cache-served
    /// extents excluded).
    pub fn bytes_read(&self) -> u64 {
        self.trace
            .iter()
            .filter(|op| !op.cached)
            .map(|op| op.len)
            .sum()
    }

    /// Consume the handle and return the recorded trace.
    pub fn into_trace(self) -> Vec<ReadOp> {
        self.trace
    }

    /// Borrow the recorded trace.
    pub fn trace(&self) -> &[ReadOp] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBackend;

    #[test]
    fn rank_io_records_trace() {
        let be = MemBackend::new();
        be.append("f", &[1, 2, 3, 4, 5]).unwrap();
        let mut io = RankIo::new(&be);
        assert_eq!(io.read("f", 1, 3).unwrap(), vec![2, 3, 4]);
        assert_eq!(io.read_all("f").unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(io.bytes_read(), 8);
        let trace = io.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0], ReadOp::new("f", 1, 3));
        assert_eq!(trace[1], ReadOp::new("f", 0, 5));
    }

    #[test]
    fn cached_records_are_traced_but_not_counted() {
        let be = MemBackend::new();
        be.append("f", &[0u8; 64]).unwrap();
        let mut io = RankIo::new(&be);
        io.read("f", 0, 16).unwrap();
        io.record_cached("f", 16, 32);
        assert_eq!(io.bytes_read(), 16);
        let trace = io.into_trace();
        assert_eq!(trace.len(), 2);
        assert!(!trace[0].cached);
        assert!(trace[1].cached);
        assert_eq!(trace[1].len, 32);
    }
}
