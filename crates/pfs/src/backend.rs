//! The storage backend trait and the per-rank tracing I/O handle.

use crate::retry::RetryPolicy;
use crate::PfsError;

/// A flat namespace of byte files, shared by all ranks.
///
/// MLOC only ever appends while building and reads while querying, so
/// the interface is deliberately minimal. Implementations must be
/// thread-safe: the MPI-like runtime drives one thread per rank.
pub trait StorageBackend: Send + Sync {
    /// Create (or truncate) a file.
    fn create(&self, name: &str) -> Result<(), PfsError>;

    /// Append bytes to a file, returning the offset they landed at.
    /// Creates the file when it does not exist.
    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError>;

    /// Read `len` bytes at `offset`.
    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError>;

    /// Size of a file in bytes.
    fn len(&self, name: &str) -> Result<u64, PfsError>;

    /// Whether a file exists.
    fn exists(&self, name: &str) -> bool;

    /// Names of all files, sorted (for inventory/size reports).
    fn list(&self) -> Vec<String>;

    /// Total bytes stored across all files, plus the number of files
    /// whose size could not be read. Listed-but-unreadable files are
    /// counted as errors instead of being silently sized at 0, so a
    /// faulty backend cannot under-report storage.
    fn total_bytes_checked(&self) -> (u64, usize) {
        let mut total = 0u64;
        let mut errors = 0usize;
        for f in self.list() {
            match self.len(&f) {
                Ok(n) => total += n,
                Err(_) => errors += 1,
            }
        }
        (total, errors)
    }

    /// Total bytes stored across all files. Files whose size cannot
    /// be read are excluded; use [`Self::total_bytes_checked`] to
    /// detect that case.
    fn total_bytes(&self) -> u64 {
        self.total_bytes_checked().0
    }
}

/// One logical read operation, as recorded in a rank's I/O trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOp {
    /// File name.
    pub file: String,
    /// Byte offset of the read.
    pub offset: u64,
    /// Length of the read in bytes.
    pub len: u64,
    /// Whether the bytes were served from a cache above the PFS. The
    /// access still appears in the trace (the query *logically* needed
    /// the extent), but the simulator charges it nothing: no seek, no
    /// transfer, no open.
    pub cached: bool,
}

impl ReadOp {
    /// An uncached read op.
    pub fn new(file: impl Into<String>, offset: u64, len: u64) -> Self {
        ReadOp {
            file: file.into(),
            offset,
            len,
            cached: false,
        }
    }
}

/// Per-rank I/O handle: serves reads from the backend while recording
/// the [`ReadOp`] trace that the simulator later prices.
pub struct RankIo<'a> {
    backend: &'a dyn StorageBackend,
    trace: Vec<ReadOp>,
    retry: RetryPolicy,
    retries: u64,
    retry_wait_s: f64,
}

impl<'a> RankIo<'a> {
    /// New handle over a backend, with no retries.
    pub fn new(backend: &'a dyn StorageBackend) -> Self {
        RankIo::with_retry(backend, RetryPolicy::none())
    }

    /// New handle that retries transient read errors per `policy`.
    pub fn with_retry(backend: &'a dyn StorageBackend, policy: RetryPolicy) -> Self {
        RankIo {
            backend,
            trace: Vec::new(),
            retry: policy,
            retries: 0,
            retry_wait_s: 0.0,
        }
    }

    /// Read and record one extent. Transient backend errors are
    /// retried per the handle's [`RetryPolicy`]; the logical read is
    /// traced once regardless of how many attempts it took (retries
    /// are accounted separately via [`Self::retries`] and the
    /// simulated [`Self::retry_wait_s`], never folded into the trace
    /// the cost simulator prices).
    pub fn read(&mut self, file: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        self.trace.push(ReadOp::new(file, offset, len));
        let mut attempt = 1u32;
        loop {
            match self.backend.read(file, offset, len) {
                Ok(buf) => return Ok(buf),
                Err(e) if e.is_transient() && self.retry.should_retry(attempt) => {
                    attempt += 1;
                    self.retries += 1;
                    self.retry_wait_s += self.retry.backoff_s(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Record an extent that a cache satisfied without touching the
    /// backend. It shows up in the trace (flagged [`ReadOp::cached`])
    /// so access patterns stay analyzable, but costs nothing in the
    /// simulator and is excluded from [`Self::bytes_read`].
    pub fn record_cached(&mut self, file: &str, offset: u64, len: u64) {
        self.trace.push(ReadOp {
            file: file.to_string(),
            offset,
            len,
            cached: true,
        });
    }

    /// Read a whole file and record it as one sequential extent.
    pub fn read_all(&mut self, file: &str) -> Result<Vec<u8>, PfsError> {
        let len = self.backend.len(file)?;
        self.read(file, 0, len)
    }

    /// The backend this handle reads from.
    pub fn backend(&self) -> &'a dyn StorageBackend {
        self.backend
    }

    /// Bytes actually read from the backend so far (cache-served
    /// extents excluded).
    pub fn bytes_read(&self) -> u64 {
        self.trace
            .iter()
            .filter(|op| !op.cached)
            .map(|op| op.len)
            .sum()
    }

    /// Transient-error retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Simulated backoff seconds accumulated by retries. Not part of
    /// the priced I/O trace — reported separately so fault-free and
    /// faulty runs of the same query stay byte- and cost-identical.
    pub fn retry_wait_s(&self) -> f64 {
        self.retry_wait_s
    }

    /// Consume the handle and return the recorded trace.
    pub fn into_trace(self) -> Vec<ReadOp> {
        self.trace
    }

    /// Borrow the recorded trace.
    pub fn trace(&self) -> &[ReadOp] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBackend;

    #[test]
    fn rank_io_records_trace() {
        let be = MemBackend::new();
        be.append("f", &[1, 2, 3, 4, 5]).unwrap();
        let mut io = RankIo::new(&be);
        assert_eq!(io.read("f", 1, 3).unwrap(), vec![2, 3, 4]);
        assert_eq!(io.read_all("f").unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(io.bytes_read(), 8);
        let trace = io.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0], ReadOp::new("f", 1, 3));
        assert_eq!(trace[1], ReadOp::new("f", 0, 5));
    }

    #[test]
    fn retry_recovers_transient_faults_with_one_trace_entry() {
        use crate::fault::{FaultBackend, FaultPlan};
        let be = MemBackend::new();
        be.append("f", &[3u8; 1024]).unwrap();
        let fb = FaultBackend::new(be, FaultPlan::transient(11, 1.0, 2));

        // Without retries the injected error surfaces.
        let mut io = RankIo::new(&fb);
        assert!(io.read("f", 0, 1024).unwrap_err().is_transient());

        // With a patient policy the same read succeeds, traced once.
        fb.reset_attempts();
        let mut io = RankIo::with_retry(&fb, RetryPolicy::with_attempts(4));
        assert_eq!(io.read("f", 0, 1024).unwrap(), vec![3u8; 1024]);
        assert!(io.retries() >= 1);
        assert!(io.retry_wait_s() > 0.0);
        assert_eq!(io.bytes_read(), 1024);
        assert_eq!(io.trace().len(), 1, "retries must not inflate the trace");
    }

    #[test]
    fn retry_does_not_mask_permanent_errors() {
        let be = MemBackend::new();
        be.append("f", &[0u8; 8]).unwrap();
        let mut io = RankIo::with_retry(&be, RetryPolicy::with_attempts(5));
        let err = io.read("missing", 0, 4).unwrap_err();
        assert!(matches!(err, PfsError::NotFound(_)));
        let err = io.read("f", 4, 100).unwrap_err();
        assert!(matches!(err, PfsError::OutOfBounds { .. }));
        assert_eq!(io.retries(), 0);
    }

    #[test]
    fn total_bytes_checked_counts_unreadable_files() {
        use crate::fault::{FaultBackend, FaultPlan};
        let be = MemBackend::new();
        be.append("a", &[0u8; 10]).unwrap();
        be.append("b", &[0u8; 20]).unwrap();
        assert_eq!(be.total_bytes_checked(), (30, 0));
        assert_eq!(be.total_bytes(), 30);

        // A backend whose len() fails for a listed file must report
        // the error count, not silently size the file at zero.
        struct HalfBroken(MemBackend);
        impl StorageBackend for HalfBroken {
            fn create(&self, name: &str) -> Result<(), PfsError> {
                self.0.create(name)
            }
            fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
                self.0.append(name, data)
            }
            fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
                self.0.read(name, offset, len)
            }
            fn len(&self, name: &str) -> Result<u64, PfsError> {
                if name == "b" {
                    Err(PfsError::NotFound(name.to_string()))
                } else {
                    self.0.len(name)
                }
            }
            fn exists(&self, name: &str) -> bool {
                self.0.exists(name)
            }
            fn list(&self) -> Vec<String> {
                self.0.list()
            }
        }
        let be = MemBackend::new();
        be.append("a", &[0u8; 10]).unwrap();
        be.append("b", &[0u8; 20]).unwrap();
        let hb = HalfBroken(be);
        assert_eq!(hb.total_bytes_checked(), (10, 1));

        // And a lost file under FaultBackend is simply not listed.
        let be = MemBackend::new();
        be.append("a", &[0u8; 10]).unwrap();
        be.append("gone", &[0u8; 99]).unwrap();
        let mut plan = FaultPlan::none();
        plan.lost_files.push("gone".into());
        let fb = FaultBackend::new(be, plan);
        assert_eq!(fb.total_bytes_checked(), (10, 0));
    }

    #[test]
    fn cached_records_are_traced_but_not_counted() {
        let be = MemBackend::new();
        be.append("f", &[0u8; 64]).unwrap();
        let mut io = RankIo::new(&be);
        io.read("f", 0, 16).unwrap();
        io.record_cached("f", 16, 32);
        assert_eq!(io.bytes_read(), 16);
        let trace = io.into_trace();
        assert_eq!(trace.len(), 2);
        assert!(!trace[0].cached);
        assert!(trace[1].cached);
        assert_eq!(trace[1].len, 32);
    }
}
