//! Cost model for the simulated parallel file system.

/// Parameters of the simulated Lustre-like PFS.
///
/// Defaults approximate the paper's 2012 testbed (Lens cluster at
/// ORNL): spinning-disk OSTs with millisecond seeks, a few hundred
/// MB/s of sequential bandwidth per OST, and 1 MiB stripes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of a discontiguous access (head seek + rotational delay).
    pub seek_s: f64,
    /// Sequential read bandwidth of one OST, bytes/second.
    pub ost_bw: f64,
    /// Metadata cost of the first access to a file by a rank.
    pub open_s: f64,
    /// Stripe size in bytes.
    pub stripe_size: u64,
    /// Number of OSTs files are striped across.
    pub num_osts: usize,
    /// How many stripe fetches one client (rank) keeps in flight —
    /// a single sequential reader does not see the full aggregate
    /// bandwidth of all OSTs (the paper's sequential scan moves ~8 GB
    /// in ~19 s ≈ 1.4 OST-streams).
    pub client_parallelism: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::lens_2012()
    }
}

impl CostModel {
    /// Approximation of the paper's testbed.
    pub fn lens_2012() -> Self {
        CostModel {
            seek_s: 8e-3,
            ost_bw: 300e6,
            open_s: 1.5e-3,
            stripe_size: 1 << 20,
            num_osts: 16,
            client_parallelism: 2,
        }
    }

    /// A model with near-zero seek cost (for ablations isolating the
    /// transfer-volume component).
    pub fn seekless(mut self) -> Self {
        self.seek_s = 0.0;
        self.open_s = 0.0;
        self
    }

    /// Aggregate sequential bandwidth across all OSTs.
    pub fn aggregate_bw(&self) -> f64 {
        self.ost_bw * self.num_osts as f64
    }

    /// OST serving byte `offset` of file `file` (round-robin striping
    /// with a per-file starting OST derived from the name).
    pub fn ost_of(&self, file: &str, offset: u64) -> usize {
        let start = Self::file_hash(file) as usize % self.num_osts;
        let stripe = (offset / self.stripe_size) as usize;
        (start + stripe) % self.num_osts
    }

    /// Stable FNV-1a hash of a file name.
    pub fn file_hash(file: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in file.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_is_round_robin() {
        let m = CostModel::lens_2012();
        let first = m.ost_of("f", 0);
        for s in 0..64u64 {
            assert_eq!(
                m.ost_of("f", s * m.stripe_size),
                (first + s as usize) % m.num_osts
            );
            // Offsets within one stripe map to the same OST.
            assert_eq!(
                m.ost_of("f", s * m.stripe_size),
                m.ost_of("f", s * m.stripe_size + m.stripe_size - 1)
            );
        }
    }

    #[test]
    fn different_files_spread_over_osts() {
        let m = CostModel::lens_2012();
        let starts: std::collections::HashSet<usize> = (0..64)
            .map(|i| m.ost_of(&format!("bin{i}.dat"), 0))
            .collect();
        assert!(starts.len() > m.num_osts / 2, "starting OSTs too clustered");
    }

    #[test]
    fn seekless_zeroes_latency() {
        let m = CostModel::lens_2012().seekless();
        assert_eq!(m.seek_s, 0.0);
        assert_eq!(m.open_s, 0.0);
        assert_eq!(m.ost_bw, CostModel::lens_2012().ost_bw);
    }
}
