//! Deterministic fault injection for storage backends.
//!
//! [`FaultBackend`] wraps any [`StorageBackend`] and injects failures
//! according to a scriptable [`FaultPlan`]:
//!
//! * **transient read errors** — a seeded hash of (file, offset, len)
//!   decides whether a read fails and how many times, so the same plan
//!   against the same access pattern always fails the same ops; a
//!   retrying caller eventually gets the true bytes.
//! * **permanent file loss** — files matching a pattern behave as if
//!   an OST died: reads and `len` return [`PfsError::NotFound`].
//! * **bit-flip corruption** — targeted bytes are XOR-masked in read
//!   results. The stored bytes are untouched; the reader sees silent
//!   corruption exactly as a bad disk would deliver it.
//! * **torn appends** — the first append to a matching file persists
//!   only a prefix and then fails, simulating a crash mid-write.
//!
//! Everything is deterministic given the plan (seed included), which
//! is what makes fault-matrix differential testing possible: replaying
//! a query under the same plan injects the same faults.
//!
//! [`CrashBackend`] covers the *write* path the same way: it emulates
//! a page cache over the wrapped backend, counts every ordered
//! durability step (`create` / `append` / `sync`), and crashes at a
//! scripted step — optionally tearing the crashing append at byte k,
//! or silently dropping fsyncs first — so the build pipeline can be
//! killed at every commit point and the recovery path exercised
//! against exactly what a real crash would leave on disk.

use crate::backend::StorageBackend;
use crate::PfsError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One targeted bit-flip: XOR `mask` into the byte at absolute
/// `offset` of any file whose name contains `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFlip {
    /// Substring the file name must contain.
    pub file: String,
    /// Absolute byte offset within the file.
    pub offset: u64,
    /// XOR mask applied to that byte (0 disables the flip).
    pub mask: u8,
}

/// One torn append: the first append to a matching file persists only
/// the first `keep` bytes, then the operation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornAppend {
    /// Substring the file name must contain.
    pub file: String,
    /// Bytes of the payload that reach storage before the "crash".
    pub keep: u64,
}

/// A scriptable, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the transient-error hash.
    pub seed: u64,
    /// Fraction of distinct read ops that fail transiently, in [0, 1].
    pub transient_rate: f64,
    /// Most consecutive transient failures a single op can see before
    /// it starts succeeding (so a sufficiently patient retrier always
    /// wins). Must be >= 1 when `transient_rate > 0`.
    pub max_transient: u32,
    /// Name substrings of permanently lost files.
    pub lost_files: Vec<String>,
    /// Targeted read-path corruptions.
    pub flips: Vec<BitFlip>,
    /// Targeted write-path crashes.
    pub torn_appends: Vec<TornAppend>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            max_transient: 1,
            lost_files: Vec::new(),
            flips: Vec::new(),
            torn_appends: Vec::new(),
        }
    }

    /// A transient-only plan: each distinct read op independently
    /// fails with probability `rate`, at most `max_transient` times.
    pub fn transient(seed: u64, rate: f64, max_transient: u32) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate.clamp(0.0, 1.0),
            max_transient: max_transient.max(1),
            ..FaultPlan::none()
        }
    }

    /// Parse the line-based plan format used by the CLI:
    ///
    /// ```text
    /// # comment
    /// seed = 42
    /// transient_rate = 0.25
    /// max_transient = 2
    /// lose <file-substring>
    /// flip <file-substring> <offset> <xor-mask>
    /// torn <file-substring> <keep-bytes>
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("fault plan line {}: {what}: {line}", lineno + 1);
            if let Some((key, value)) = line.split_once('=') {
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "seed" => plan.seed = value.parse().map_err(|_| err("bad seed"))?,
                    "transient_rate" => {
                        let rate: f64 = value.parse().map_err(|_| err("bad rate"))?;
                        if !(0.0..=1.0).contains(&rate) {
                            return Err(err("rate must be in [0, 1]"));
                        }
                        plan.transient_rate = rate;
                    }
                    "max_transient" => {
                        plan.max_transient = value.parse().map_err(|_| err("bad count"))?
                    }
                    _ => return Err(err("unknown key")),
                }
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("lose") => {
                    let pat = words.next().ok_or_else(|| err("missing file"))?;
                    plan.lost_files.push(pat.to_string());
                }
                Some("flip") => {
                    let file = words.next().ok_or_else(|| err("missing file"))?;
                    let offset = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("missing/bad offset"))?;
                    let mask = words
                        .next()
                        .and_then(parse_mask)
                        .ok_or_else(|| err("missing/bad mask"))?;
                    plan.flips.push(BitFlip {
                        file: file.to_string(),
                        offset,
                        mask,
                    });
                }
                Some("torn") => {
                    let file = words.next().ok_or_else(|| err("missing file"))?;
                    let keep = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("missing/bad keep"))?;
                    plan.torn_appends.push(TornAppend {
                        file: file.to_string(),
                        keep,
                    });
                }
                _ => return Err(err("unknown directive")),
            }
            if words.next().is_some() {
                return Err(err("trailing tokens"));
            }
        }
        plan.max_transient = plan.max_transient.max(1);
        Ok(plan)
    }
}

fn parse_mask(w: &str) -> Option<u8> {
    if let Some(hex) = w.strip_prefix("0x").or_else(|| w.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        w.parse().ok()
    }
}

/// Injection counters, for asserting that a plan actually fired.
#[derive(Debug, Default)]
pub struct FaultStats {
    transient: AtomicU64,
    flipped: AtomicU64,
    lost_denied: AtomicU64,
    torn: AtomicU64,
}

impl FaultStats {
    /// Transient read errors raised so far.
    pub fn transient_errors(&self) -> u64 {
        self.transient.load(Ordering::Relaxed)
    }

    /// Bytes corrupted in read results so far.
    pub fn bytes_flipped(&self) -> u64 {
        self.flipped.load(Ordering::Relaxed)
    }

    /// Operations denied because the file is in the lost set.
    pub fn lost_denials(&self) -> u64 {
        self.lost_denied.load(Ordering::Relaxed)
    }

    /// Torn appends executed.
    pub fn torn_appends(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }
}

/// A [`StorageBackend`] wrapper that injects the faults of a
/// [`FaultPlan`] deterministically.
pub struct FaultBackend<B: StorageBackend> {
    inner: B,
    plan: FaultPlan,
    stats: FaultStats,
    /// attempts seen per distinct (file, offset, len) read signature.
    attempts: Mutex<HashMap<(String, u64, u64), u32>>,
    /// torn-append rules already fired (by index into the plan).
    torn_fired: Mutex<Vec<bool>>,
}

impl<B: StorageBackend> FaultBackend<B> {
    /// Wrap `inner`, injecting per `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let torn_fired = vec![false; plan.torn_appends.len()];
        FaultBackend {
            inner,
            plan,
            stats: FaultStats::default(),
            attempts: Mutex::new(HashMap::new()),
            torn_fired: Mutex::new(torn_fired),
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The wrapped backend (e.g. to corrupt or inspect stored bytes
    /// directly in tests).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Forget which ops already failed, so the transient schedule
    /// replays from scratch (useful between differential rounds).
    pub fn reset_attempts(&self) {
        self.attempts.lock().clear();
    }

    fn is_lost(&self, name: &str) -> bool {
        self.plan.lost_files.iter().any(|pat| name.contains(pat))
    }

    /// How many times the op with this signature should fail before
    /// succeeding (0 = never fails).
    fn planned_failures(&self, file: &str, offset: u64, len: u64) -> u32 {
        if self.plan.transient_rate <= 0.0 {
            return 0;
        }
        let h = op_hash(self.plan.seed, file, offset, len);
        let threshold = (self.plan.transient_rate * 10_000.0) as u64;
        if h % 10_000 < threshold {
            1 + ((h >> 32) % u64::from(self.plan.max_transient)) as u32
        } else {
            0
        }
    }

    fn apply_flips(&self, name: &str, offset: u64, buf: &mut [u8]) {
        for flip in &self.plan.flips {
            if flip.mask == 0 || !name.contains(flip.file.as_str()) {
                continue;
            }
            if flip.offset >= offset && flip.offset - offset < buf.len() as u64 {
                buf[(flip.offset - offset) as usize] ^= flip.mask;
                self.stats.flipped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl<B: StorageBackend> StorageBackend for FaultBackend<B> {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        self.inner.create(name)
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        let torn = {
            let mut fired = self.torn_fired.lock();
            self.plan
                .torn_appends
                .iter()
                .position(|t| name.contains(t.file.as_str()))
                .filter(|&i| !std::mem::replace(&mut fired[i], true))
        };
        if let Some(i) = torn {
            let keep = (self.plan.torn_appends[i].keep as usize).min(data.len());
            self.inner.append(name, &data[..keep])?;
            self.stats.torn.fetch_add(1, Ordering::Relaxed);
            return Err(PfsError::Io(std::io::Error::other(format!(
                "torn append to {name}: {keep} of {} bytes persisted (injected crash)",
                data.len()
            ))));
        }
        self.inner.append(name, data)
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        if self.is_lost(name) {
            self.stats.lost_denied.fetch_add(1, Ordering::Relaxed);
            return Err(PfsError::NotFound(name.to_string()));
        }
        let planned = self.planned_failures(name, offset, len);
        if planned > 0 {
            let attempt = {
                let mut attempts = self.attempts.lock();
                let n = attempts.entry((name.to_string(), offset, len)).or_insert(0);
                *n += 1;
                *n
            };
            if attempt <= planned {
                self.stats.transient.fetch_add(1, Ordering::Relaxed);
                return Err(PfsError::Transient {
                    file: name.to_string(),
                    offset,
                    attempt,
                });
            }
        }
        let mut buf = self.inner.read(name, offset, len)?;
        self.apply_flips(name, offset, &mut buf);
        Ok(buf)
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        if self.is_lost(name) {
            self.stats.lost_denied.fetch_add(1, Ordering::Relaxed);
            return Err(PfsError::NotFound(name.to_string()));
        }
        self.inner.len(name)
    }

    // read_batch deliberately stays on the default sequential loop:
    // each request must consult the fault schedule through this
    // wrapper's read() so per-op fault identity is preserved.

    // Like append, sync is a write-side op: "lost" files model a dead
    // OST on the *read* path, so a build that wrote the bytes may
    // still flush them.
    fn sync(&self, name: &str) -> Result<(), PfsError> {
        self.inner.sync(name)
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn shard_of(&self, name: &str) -> usize {
        self.inner.shard_of(name)
    }

    // Replica-direct access models reaching past the faulty device
    // layer (repair judging each physical copy), so faults are not
    // re-applied here; `remove` is write-side like append/sync.
    fn remove(&self, name: &str) -> Result<(), PfsError> {
        self.inner.remove(name)
    }

    fn replica_count(&self) -> usize {
        self.inner.replica_count()
    }

    fn replica_shard_of(&self, name: &str, replica: usize) -> usize {
        self.inner.replica_shard_of(name, replica)
    }

    fn read_replica(
        &self,
        name: &str,
        replica: usize,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, PfsError> {
        self.inner.read_replica(name, replica, offset, len)
    }

    fn len_replica(&self, name: &str, replica: usize) -> Result<u64, PfsError> {
        self.inner.len_replica(name, replica)
    }

    fn read_repair_count(&self) -> u64 {
        self.inner.read_repair_count()
    }

    fn exists(&self, name: &str) -> bool {
        !self.is_lost(name) && self.inner.exists(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner
            .list()
            .into_iter()
            .filter(|f| !self.is_lost(f))
            .collect()
    }
}

/// A scripted write-path crash: at which ordered durability step to
/// die, and how.
///
/// Write ops (`create`, `append`, `sync`, `remove`) are counted in
/// submission order; the op whose 1-based index equals `crash_at`
/// fails, and every write op after it fails too. Un-synced bytes are
/// lost (the emulated page cache empties), files never synced since
/// creation lose their directory entry — exactly the states the
/// footer commit-marker discipline must recover from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CrashPlan {
    /// 1-based index of the write op that crashes (0 = never crash).
    pub crash_at: u64,
    /// If the crashing op is an append, persist this prefix of its
    /// payload durably before dying — a torn write at byte k. `None`
    /// loses the whole crashing append.
    pub torn_keep: Option<u64>,
    /// Name substrings whose `sync` *lies*: it reports success
    /// without flushing, so a later crash (or [`CrashBackend::
    /// power_cut`]) loses bytes the caller believed durable.
    pub drop_syncs: Vec<String>,
}

impl CrashPlan {
    /// A plan that never crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Crash at write op `n` (1-based).
    pub fn at(n: u64) -> Self {
        CrashPlan {
            crash_at: n,
            ..CrashPlan::default()
        }
    }

    /// Crash at write op `n`, tearing the append (if it is one) at
    /// byte `keep`.
    pub fn torn_at(n: u64, keep: u64) -> Self {
        CrashPlan {
            crash_at: n,
            torn_keep: Some(keep),
            ..CrashPlan::default()
        }
    }

    /// Parse the line-based plan format used by the CLI:
    ///
    /// ```text
    /// # crash during the third durability step
    /// crash_at = 3
    /// torn_keep = 512
    /// dropsync bin0000.dat
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = CrashPlan::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("crash plan line {}: {what}: {line}", lineno + 1);
            if let Some((key, value)) = line.split_once('=') {
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "crash_at" => plan.crash_at = value.parse().map_err(|_| err("bad index"))?,
                    "torn_keep" => {
                        plan.torn_keep = Some(value.parse().map_err(|_| err("bad byte count"))?)
                    }
                    _ => return Err(err("unknown key")),
                }
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("dropsync") => {
                    let pat = words.next().ok_or_else(|| err("missing file"))?;
                    plan.drop_syncs.push(pat.to_string());
                }
                _ => return Err(err("unknown directive")),
            }
            if words.next().is_some() {
                return Err(err("trailing tokens"));
            }
        }
        Ok(plan)
    }
}

/// Un-flushed state of one file in the emulated page cache: `tail`
/// holds bytes appended since the last successful sync; `base_len` is
/// how many durable bytes the wrapped backend already holds; `rebase`
/// means the durable copy must be re-created (truncated) on flush
/// because `create` ran but was never synced.
#[derive(Debug, Default)]
struct VolatileFile {
    base_len: u64,
    tail: Vec<u8>,
    rebase: bool,
}

#[derive(Debug, Default)]
struct CrashState {
    ops: u64,
    crashed: bool,
    overlay: HashMap<String, VolatileFile>,
    /// (op kind, file) per write op, for enumerating durability steps.
    log: Vec<(&'static str, String)>,
}

/// Wraps a [`StorageBackend`] with an emulated page cache and a
/// scripted [`CrashPlan`].
///
/// Before the crash, readers see the composite (durable + volatile)
/// state a running process would; writes buffer until `sync` flushes
/// them down. At the crash the volatile layer vanishes: the wrapped
/// backend is left holding exactly the durable state — torn files,
/// dropped entries and all — and every later write op fails. Recovery
/// code then runs against the wrapped backend directly (see
/// [`Self::inner`] / [`Self::into_inner`]), the same way `mloc
/// repair` runs against a store after a real crash.
pub struct CrashBackend<B: StorageBackend> {
    inner: B,
    plan: CrashPlan,
    state: Mutex<CrashState>,
}

impl<B: StorageBackend> CrashBackend<B> {
    /// Wrap `inner`, crashing per `plan`.
    pub fn new(inner: B, plan: CrashPlan) -> Self {
        CrashBackend {
            inner,
            plan,
            state: Mutex::new(CrashState::default()),
        }
    }

    /// Write ops counted so far — run a build with
    /// [`CrashPlan::none`] to census the durability steps, then replay
    /// with `crash_at` sweeping `1..=write_ops()`.
    pub fn write_ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// The ordered (op kind, file) log of write ops.
    pub fn op_log(&self) -> Vec<(&'static str, String)> {
        self.state.lock().log.clone()
    }

    /// Whether the scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Pull the plug *now*: volatile state vanishes without an error
    /// being returned to anyone. Models power loss after a build that
    /// believed its (possibly dropped) syncs.
    pub fn power_cut(&self) {
        let mut st = self.state.lock();
        st.overlay.clear();
        st.crashed = true;
    }

    /// The wrapped backend — after a crash, exactly the durable state.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap to the durable store for recovery.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Count one write op; `Err` if already crashed, `Ok(true)` if
    /// this op is the one that crashes.
    fn count_op(
        &self,
        st: &mut CrashState,
        kind: &'static str,
        name: &str,
    ) -> Result<bool, PfsError> {
        if st.crashed {
            return Err(PfsError::Io(std::io::Error::other(format!(
                "{kind} {name}: backend crashed (injected)"
            ))));
        }
        st.ops += 1;
        st.log.push((kind, name.to_string()));
        Ok(self.plan.crash_at != 0 && st.ops == self.plan.crash_at)
    }

    fn crash_error(kind: &str, name: &str) -> PfsError {
        PfsError::Io(std::io::Error::other(format!(
            "injected crash during {kind} {name}"
        )))
    }

    /// Flush one file's volatile bytes to the wrapped backend.
    fn flush(&self, name: &str, vf: VolatileFile) -> Result<(), PfsError> {
        if vf.rebase {
            self.inner.create(name)?;
        }
        if !vf.tail.is_empty() {
            self.inner.append(name, &vf.tail)?;
        }
        self.inner.sync(name)?;
        Ok(())
    }

    fn logical_len(&self, st: &CrashState, name: &str) -> Option<u64> {
        match st.overlay.get(name) {
            Some(vf) => Some(vf.base_len + vf.tail.len() as u64),
            None => self.inner.len(name).ok(),
        }
    }
}

impl<B: StorageBackend> StorageBackend for CrashBackend<B> {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        let mut st = self.state.lock();
        if self.count_op(&mut st, "create", name)? {
            st.overlay.clear();
            st.crashed = true;
            return Err(Self::crash_error("create", name));
        }
        // Creation (and the truncation it implies) stays volatile
        // until the first sync makes the entry durable.
        st.overlay.insert(
            name.to_string(),
            VolatileFile {
                base_len: 0,
                tail: Vec::new(),
                rebase: true,
            },
        );
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        let mut st = self.state.lock();
        let crashing = self.count_op(&mut st, "append", name)?;
        if crashing {
            // A torn write persists a prefix of the payload (plus any
            // earlier un-synced tail, in write order) before dying.
            if let Some(keep) = self.plan.torn_keep {
                let keep = (keep as usize).min(data.len());
                let mut vf = st.overlay.remove(name).unwrap_or_else(|| VolatileFile {
                    base_len: self.inner.len(name).unwrap_or(0),
                    ..VolatileFile::default()
                });
                vf.tail.extend_from_slice(&data[..keep]);
                let _ = self.flush(name, vf);
            }
            st.overlay.clear();
            st.crashed = true;
            return Err(Self::crash_error("append", name));
        }
        if !st.overlay.contains_key(name) {
            let base_len = self.inner.len(name).unwrap_or(0);
            st.overlay.insert(
                name.to_string(),
                VolatileFile {
                    base_len,
                    ..VolatileFile::default()
                },
            );
        }
        let vf = st.overlay.get_mut(name).expect("just inserted");
        let offset = vf.base_len + vf.tail.len() as u64;
        vf.tail.extend_from_slice(data);
        Ok(offset)
    }

    fn sync(&self, name: &str) -> Result<(), PfsError> {
        let mut st = self.state.lock();
        if self.count_op(&mut st, "sync", name)? {
            st.overlay.clear();
            st.crashed = true;
            return Err(Self::crash_error("sync", name));
        }
        if self.plan.drop_syncs.iter().any(|pat| name.contains(pat)) {
            // The lie at the heart of the dropped-fsync fault: report
            // success, flush nothing.
            return Ok(());
        }
        match st.overlay.remove(name) {
            Some(vf) => self.flush(name, vf),
            None => self.inner.sync(name),
        }
    }

    fn remove(&self, name: &str) -> Result<(), PfsError> {
        let mut st = self.state.lock();
        if self.count_op(&mut st, "remove", name)? {
            st.overlay.clear();
            st.crashed = true;
            return Err(Self::crash_error("remove", name));
        }
        let had_volatile = st.overlay.remove(name).is_some();
        match self.inner.remove(name) {
            Err(PfsError::NotFound(_)) if had_volatile => Ok(()),
            other => other,
        }
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        let st = self.state.lock();
        let Some(vf) = st.overlay.get(name) else {
            return self.inner.read(name, offset, len);
        };
        let total = vf.base_len + vf.tail.len() as u64;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= total)
            .ok_or_else(|| PfsError::OutOfBounds {
                file: name.to_string(),
                offset,
                len,
                size: total,
            })?;
        // Stitch the durable base and the volatile tail.
        let mut buf = Vec::with_capacity(len as usize);
        if offset < vf.base_len {
            let base_end = end.min(vf.base_len);
            buf.extend_from_slice(&self.inner.read(name, offset, base_end - offset)?);
        }
        if end > vf.base_len {
            let t0 = offset.saturating_sub(vf.base_len) as usize;
            let t1 = (end - vf.base_len) as usize;
            buf.extend_from_slice(&vf.tail[t0..t1]);
        }
        Ok(buf)
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        let st = self.state.lock();
        self.logical_len(&st, name)
            .ok_or_else(|| PfsError::NotFound(name.to_string()))
    }

    fn exists(&self, name: &str) -> bool {
        let st = self.state.lock();
        st.overlay.contains_key(name) || self.inner.exists(name)
    }

    fn list(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut names = self.inner.list();
        names.extend(st.overlay.keys().cloned());
        names.sort();
        names.dedup();
        names
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn shard_of(&self, name: &str) -> usize {
        self.inner.shard_of(name)
    }

    fn replica_count(&self) -> usize {
        self.inner.replica_count()
    }

    fn replica_shard_of(&self, name: &str, replica: usize) -> usize {
        self.inner.replica_shard_of(name, replica)
    }

    fn read_replica(
        &self,
        name: &str,
        replica: usize,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, PfsError> {
        self.inner.read_replica(name, replica, offset, len)
    }

    fn len_replica(&self, name: &str, replica: usize) -> Result<u64, PfsError> {
        self.inner.len_replica(name, replica)
    }

    fn read_repair_count(&self) -> u64 {
        self.inner.read_repair_count()
    }
}

/// Deterministic per-op hash: FNV-1a over the file name, then a
/// splitmix64-style finalizer mixing in seed/offset/len. Zero-dep and
/// stable across platforms, which is all the fault schedule needs.
fn op_hash(seed: u64, file: &str, offset: u64, len: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in file.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h
        .wrapping_add(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(offset.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(len.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBackend;

    fn seeded(rate: f64, max_transient: u32) -> FaultBackend<MemBackend> {
        let be = MemBackend::new();
        be.append("bin0.dat", &[7u8; 4096]).unwrap();
        be.append("bin1.dat", &[9u8; 4096]).unwrap();
        FaultBackend::new(be, FaultPlan::transient(42, rate, max_transient))
    }

    #[test]
    fn transient_errors_are_deterministic_and_bounded() {
        let fb = seeded(0.5, 3);
        let mut failures_a = Vec::new();
        for off in (0..4096).step_by(256) {
            let mut tries = 0u32;
            loop {
                tries += 1;
                match fb.read("bin0.dat", off, 64) {
                    Ok(buf) => {
                        assert_eq!(buf, vec![7u8; 64]);
                        break;
                    }
                    Err(e) => {
                        assert!(e.is_transient());
                        assert!(tries <= 3, "op failed more than max_transient times");
                    }
                }
            }
            failures_a.push(tries - 1);
        }
        assert!(
            failures_a.iter().any(|&n| n > 0),
            "rate 0.5 over 16 ops injected nothing"
        );
        // Same plan + fresh state => identical schedule.
        let fb2 = seeded(0.5, 3);
        for (i, off) in (0..4096).step_by(256).enumerate() {
            let mut tries = 0u32;
            while fb2.read("bin0.dat", off, 64).is_err() {
                tries += 1;
            }
            assert_eq!(tries, failures_a[i], "schedule not deterministic");
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let fb = seeded(0.0, 3);
        for off in (0..4096).step_by(64) {
            fb.read("bin0.dat", off, 64).unwrap();
        }
        assert_eq!(fb.stats().transient_errors(), 0);
    }

    #[test]
    fn lost_files_vanish_everywhere() {
        let mut plan = FaultPlan::none();
        plan.lost_files.push("bin1".to_string());
        let fb = FaultBackend::new(MemBackend::new(), plan);
        fb.inner().append("bin0.dat", &[1]).unwrap();
        fb.inner().append("bin1.dat", &[2]).unwrap();
        assert!(fb.exists("bin0.dat"));
        assert!(!fb.exists("bin1.dat"));
        assert!(matches!(
            fb.read("bin1.dat", 0, 1),
            Err(PfsError::NotFound(_))
        ));
        assert!(matches!(fb.len("bin1.dat"), Err(PfsError::NotFound(_))));
        assert_eq!(fb.list(), vec!["bin0.dat".to_string()]);
        assert!(fb.stats().lost_denials() >= 2);
    }

    #[test]
    fn bit_flips_corrupt_reads_not_storage() {
        let mut plan = FaultPlan::none();
        plan.flips.push(BitFlip {
            file: "bin0".to_string(),
            offset: 10,
            mask: 0x80,
        });
        let fb = FaultBackend::new(MemBackend::new(), plan);
        fb.inner().append("bin0.dat", &[0u8; 32]).unwrap();
        let buf = fb.read("bin0.dat", 0, 32).unwrap();
        assert_eq!(buf[10], 0x80);
        assert_eq!(buf[9], 0);
        // Reads that miss the offset are untouched.
        assert_eq!(fb.read("bin0.dat", 11, 8).unwrap(), vec![0u8; 8]);
        // Underlying bytes are clean.
        assert_eq!(fb.inner().read("bin0.dat", 10, 1).unwrap(), vec![0]);
        assert_eq!(fb.stats().bytes_flipped(), 1);
    }

    #[test]
    fn torn_append_persists_prefix_then_fails_once() {
        let mut plan = FaultPlan::none();
        plan.torn_appends.push(TornAppend {
            file: "meta".to_string(),
            keep: 5,
        });
        let fb = FaultBackend::new(MemBackend::new(), plan);
        let err = fb.append("ds/meta", &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap_err();
        assert!(err.to_string().contains("torn append"));
        assert_eq!(fb.len("ds/meta").unwrap(), 5);
        // The rule fires once; later appends succeed.
        fb.append("ds/meta", &[9, 9]).unwrap();
        assert_eq!(fb.len("ds/meta").unwrap(), 7);
        assert_eq!(fb.stats().torn_appends(), 1);
    }

    #[test]
    fn crash_backend_buffers_until_sync() {
        let cb = CrashBackend::new(MemBackend::new(), CrashPlan::none());
        cb.create("f").unwrap();
        assert_eq!(cb.append("f", &[1, 2, 3]).unwrap(), 0);
        assert_eq!(cb.append("f", &[4]).unwrap(), 3);
        // Readers through the backend see the composite state …
        assert_eq!(cb.read("f", 1, 3).unwrap(), vec![2, 3, 4]);
        assert_eq!(cb.len("f").unwrap(), 4);
        assert!(cb.exists("f"));
        assert_eq!(cb.list(), vec!["f".to_string()]);
        // … but nothing is durable yet.
        assert!(!cb.inner().exists("f"));
        cb.sync("f").unwrap();
        assert_eq!(cb.inner().read("f", 0, 4).unwrap(), vec![1, 2, 3, 4]);
        // Reads after flush stitch correctly across the durable base.
        cb.append("f", &[5, 6]).unwrap();
        assert_eq!(cb.read("f", 2, 4).unwrap(), vec![3, 4, 5, 6]);
        assert_eq!(cb.inner().len("f").unwrap(), 4);
        assert_eq!(cb.write_ops(), 5);
        assert_eq!(
            cb.op_log().iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec!["create", "append", "append", "sync", "append"]
        );
    }

    #[test]
    fn crash_discards_volatile_and_fails_later_writes() {
        // Ops: 1 create, 2 append, 3 sync, 4 append (crash), …
        let cb = CrashBackend::new(MemBackend::new(), CrashPlan::at(4));
        cb.create("f").unwrap();
        cb.append("f", &[1, 2]).unwrap();
        cb.sync("f").unwrap();
        let err = cb.append("f", &[3, 4]).unwrap_err();
        assert!(err.to_string().contains("injected crash"), "{err}");
        assert!(cb.crashed());
        // Durable state: the synced prefix only.
        assert_eq!(cb.read("f", 0, 2).unwrap(), vec![1, 2]);
        assert_eq!(cb.len("f").unwrap(), 2);
        // Everything after the crash fails.
        assert!(cb.append("f", &[9]).is_err());
        assert!(cb.create("g").is_err());
        assert!(cb.sync("f").is_err());
    }

    #[test]
    fn crash_before_sync_loses_directory_entry() {
        // The file is created and appended but never synced: at the
        // crash its entry was never durable, so it vanishes.
        let cb = CrashBackend::new(MemBackend::new(), CrashPlan::at(3));
        cb.create("f").unwrap();
        cb.append("f", &[1, 2, 3]).unwrap();
        assert!(cb.create("g").is_err()); // op 3 crashes
        assert!(!cb.exists("f"));
        assert!(cb.list().is_empty());
        assert!(!cb.inner().exists("f"));
    }

    #[test]
    fn torn_crash_persists_prefix() {
        // Ops: 1 create, 2 sync (entry durable), 3 append torn at 3.
        let cb = CrashBackend::new(MemBackend::new(), CrashPlan::torn_at(3, 3));
        cb.create("f").unwrap();
        cb.sync("f").unwrap();
        assert!(cb.append("f", &[1, 2, 3, 4, 5, 6, 7, 8]).is_err());
        assert!(cb.crashed());
        assert_eq!(cb.inner().read("f", 0, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(cb.inner().len("f").unwrap(), 3);
    }

    #[test]
    fn dropped_sync_lies_then_power_cut_loses_bytes() {
        let mut plan = CrashPlan::none();
        plan.drop_syncs.push("bin".to_string());
        let cb = CrashBackend::new(MemBackend::new(), plan);
        cb.create("bin0.dat").unwrap();
        cb.append("bin0.dat", &[7u8; 64]).unwrap();
        cb.sync("bin0.dat").unwrap(); // lies: nothing flushed
        cb.create("meta").unwrap();
        cb.append("meta", &[1u8; 8]).unwrap();
        cb.sync("meta").unwrap(); // honest: flushed
        assert_eq!(cb.len("bin0.dat").unwrap(), 64, "pre-crash view intact");
        cb.power_cut();
        assert!(!cb.inner().exists("bin0.dat"), "dropped sync lost the file");
        assert_eq!(cb.inner().read("meta", 0, 8).unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn crash_plan_parser_round_trip() {
        let plan = CrashPlan::parse(
            "
            # CI drill
            crash_at = 7
            torn_keep = 512
            dropsync bin0000.dat
            ",
        )
        .unwrap();
        assert_eq!(plan.crash_at, 7);
        assert_eq!(plan.torn_keep, Some(512));
        assert_eq!(plan.drop_syncs, vec!["bin0000.dat".to_string()]);
        assert!(CrashPlan::parse("crash_at = x").is_err());
        assert!(CrashPlan::parse("bogus").is_err());
        assert_eq!(CrashPlan::parse("").unwrap(), CrashPlan::none());
    }

    #[test]
    fn plan_parser_round_trip() {
        let text = "
            # schedule for CI
            seed = 7
            transient_rate = 0.25
            max_transient = 2
            lose bin3
            flip v.dat 128 0x80
            torn meta 10
        ";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.transient_rate, 0.25);
        assert_eq!(plan.max_transient, 2);
        assert_eq!(plan.lost_files, vec!["bin3".to_string()]);
        assert_eq!(
            plan.flips,
            vec![BitFlip {
                file: "v.dat".to_string(),
                offset: 128,
                mask: 0x80
            }]
        );
        assert_eq!(
            plan.torn_appends,
            vec![TornAppend {
                file: "meta".to_string(),
                keep: 10
            }]
        );

        assert!(FaultPlan::parse("transient_rate = 1.5").is_err());
        assert!(FaultPlan::parse("flip onlyfile").is_err());
        assert!(FaultPlan::parse("bogus directive").is_err());
    }
}
