//! Deterministic fault injection for storage backends.
//!
//! [`FaultBackend`] wraps any [`StorageBackend`] and injects failures
//! according to a scriptable [`FaultPlan`]:
//!
//! * **transient read errors** — a seeded hash of (file, offset, len)
//!   decides whether a read fails and how many times, so the same plan
//!   against the same access pattern always fails the same ops; a
//!   retrying caller eventually gets the true bytes.
//! * **permanent file loss** — files matching a pattern behave as if
//!   an OST died: reads and `len` return [`PfsError::NotFound`].
//! * **bit-flip corruption** — targeted bytes are XOR-masked in read
//!   results. The stored bytes are untouched; the reader sees silent
//!   corruption exactly as a bad disk would deliver it.
//! * **torn appends** — the first append to a matching file persists
//!   only a prefix and then fails, simulating a crash mid-write.
//!
//! Everything is deterministic given the plan (seed included), which
//! is what makes fault-matrix differential testing possible: replaying
//! a query under the same plan injects the same faults.

use crate::backend::StorageBackend;
use crate::PfsError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One targeted bit-flip: XOR `mask` into the byte at absolute
/// `offset` of any file whose name contains `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFlip {
    /// Substring the file name must contain.
    pub file: String,
    /// Absolute byte offset within the file.
    pub offset: u64,
    /// XOR mask applied to that byte (0 disables the flip).
    pub mask: u8,
}

/// One torn append: the first append to a matching file persists only
/// the first `keep` bytes, then the operation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornAppend {
    /// Substring the file name must contain.
    pub file: String,
    /// Bytes of the payload that reach storage before the "crash".
    pub keep: u64,
}

/// A scriptable, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the transient-error hash.
    pub seed: u64,
    /// Fraction of distinct read ops that fail transiently, in [0, 1].
    pub transient_rate: f64,
    /// Most consecutive transient failures a single op can see before
    /// it starts succeeding (so a sufficiently patient retrier always
    /// wins). Must be >= 1 when `transient_rate > 0`.
    pub max_transient: u32,
    /// Name substrings of permanently lost files.
    pub lost_files: Vec<String>,
    /// Targeted read-path corruptions.
    pub flips: Vec<BitFlip>,
    /// Targeted write-path crashes.
    pub torn_appends: Vec<TornAppend>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            max_transient: 1,
            lost_files: Vec::new(),
            flips: Vec::new(),
            torn_appends: Vec::new(),
        }
    }

    /// A transient-only plan: each distinct read op independently
    /// fails with probability `rate`, at most `max_transient` times.
    pub fn transient(seed: u64, rate: f64, max_transient: u32) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate.clamp(0.0, 1.0),
            max_transient: max_transient.max(1),
            ..FaultPlan::none()
        }
    }

    /// Parse the line-based plan format used by the CLI:
    ///
    /// ```text
    /// # comment
    /// seed = 42
    /// transient_rate = 0.25
    /// max_transient = 2
    /// lose <file-substring>
    /// flip <file-substring> <offset> <xor-mask>
    /// torn <file-substring> <keep-bytes>
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("fault plan line {}: {what}: {line}", lineno + 1);
            if let Some((key, value)) = line.split_once('=') {
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "seed" => plan.seed = value.parse().map_err(|_| err("bad seed"))?,
                    "transient_rate" => {
                        let rate: f64 = value.parse().map_err(|_| err("bad rate"))?;
                        if !(0.0..=1.0).contains(&rate) {
                            return Err(err("rate must be in [0, 1]"));
                        }
                        plan.transient_rate = rate;
                    }
                    "max_transient" => {
                        plan.max_transient = value.parse().map_err(|_| err("bad count"))?
                    }
                    _ => return Err(err("unknown key")),
                }
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("lose") => {
                    let pat = words.next().ok_or_else(|| err("missing file"))?;
                    plan.lost_files.push(pat.to_string());
                }
                Some("flip") => {
                    let file = words.next().ok_or_else(|| err("missing file"))?;
                    let offset = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("missing/bad offset"))?;
                    let mask = words
                        .next()
                        .and_then(parse_mask)
                        .ok_or_else(|| err("missing/bad mask"))?;
                    plan.flips.push(BitFlip {
                        file: file.to_string(),
                        offset,
                        mask,
                    });
                }
                Some("torn") => {
                    let file = words.next().ok_or_else(|| err("missing file"))?;
                    let keep = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("missing/bad keep"))?;
                    plan.torn_appends.push(TornAppend {
                        file: file.to_string(),
                        keep,
                    });
                }
                _ => return Err(err("unknown directive")),
            }
            if words.next().is_some() {
                return Err(err("trailing tokens"));
            }
        }
        plan.max_transient = plan.max_transient.max(1);
        Ok(plan)
    }
}

fn parse_mask(w: &str) -> Option<u8> {
    if let Some(hex) = w.strip_prefix("0x").or_else(|| w.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        w.parse().ok()
    }
}

/// Injection counters, for asserting that a plan actually fired.
#[derive(Debug, Default)]
pub struct FaultStats {
    transient: AtomicU64,
    flipped: AtomicU64,
    lost_denied: AtomicU64,
    torn: AtomicU64,
}

impl FaultStats {
    /// Transient read errors raised so far.
    pub fn transient_errors(&self) -> u64 {
        self.transient.load(Ordering::Relaxed)
    }

    /// Bytes corrupted in read results so far.
    pub fn bytes_flipped(&self) -> u64 {
        self.flipped.load(Ordering::Relaxed)
    }

    /// Operations denied because the file is in the lost set.
    pub fn lost_denials(&self) -> u64 {
        self.lost_denied.load(Ordering::Relaxed)
    }

    /// Torn appends executed.
    pub fn torn_appends(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }
}

/// A [`StorageBackend`] wrapper that injects the faults of a
/// [`FaultPlan`] deterministically.
pub struct FaultBackend<B: StorageBackend> {
    inner: B,
    plan: FaultPlan,
    stats: FaultStats,
    /// attempts seen per distinct (file, offset, len) read signature.
    attempts: Mutex<HashMap<(String, u64, u64), u32>>,
    /// torn-append rules already fired (by index into the plan).
    torn_fired: Mutex<Vec<bool>>,
}

impl<B: StorageBackend> FaultBackend<B> {
    /// Wrap `inner`, injecting per `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let torn_fired = vec![false; plan.torn_appends.len()];
        FaultBackend {
            inner,
            plan,
            stats: FaultStats::default(),
            attempts: Mutex::new(HashMap::new()),
            torn_fired: Mutex::new(torn_fired),
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The wrapped backend (e.g. to corrupt or inspect stored bytes
    /// directly in tests).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Forget which ops already failed, so the transient schedule
    /// replays from scratch (useful between differential rounds).
    pub fn reset_attempts(&self) {
        self.attempts.lock().clear();
    }

    fn is_lost(&self, name: &str) -> bool {
        self.plan.lost_files.iter().any(|pat| name.contains(pat))
    }

    /// How many times the op with this signature should fail before
    /// succeeding (0 = never fails).
    fn planned_failures(&self, file: &str, offset: u64, len: u64) -> u32 {
        if self.plan.transient_rate <= 0.0 {
            return 0;
        }
        let h = op_hash(self.plan.seed, file, offset, len);
        let threshold = (self.plan.transient_rate * 10_000.0) as u64;
        if h % 10_000 < threshold {
            1 + ((h >> 32) % u64::from(self.plan.max_transient)) as u32
        } else {
            0
        }
    }

    fn apply_flips(&self, name: &str, offset: u64, buf: &mut [u8]) {
        for flip in &self.plan.flips {
            if flip.mask == 0 || !name.contains(flip.file.as_str()) {
                continue;
            }
            if flip.offset >= offset && flip.offset - offset < buf.len() as u64 {
                buf[(flip.offset - offset) as usize] ^= flip.mask;
                self.stats.flipped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl<B: StorageBackend> StorageBackend for FaultBackend<B> {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        self.inner.create(name)
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        let torn = {
            let mut fired = self.torn_fired.lock();
            self.plan
                .torn_appends
                .iter()
                .position(|t| name.contains(t.file.as_str()))
                .filter(|&i| !std::mem::replace(&mut fired[i], true))
        };
        if let Some(i) = torn {
            let keep = (self.plan.torn_appends[i].keep as usize).min(data.len());
            self.inner.append(name, &data[..keep])?;
            self.stats.torn.fetch_add(1, Ordering::Relaxed);
            return Err(PfsError::Io(std::io::Error::other(format!(
                "torn append to {name}: {keep} of {} bytes persisted (injected crash)",
                data.len()
            ))));
        }
        self.inner.append(name, data)
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        if self.is_lost(name) {
            self.stats.lost_denied.fetch_add(1, Ordering::Relaxed);
            return Err(PfsError::NotFound(name.to_string()));
        }
        let planned = self.planned_failures(name, offset, len);
        if planned > 0 {
            let attempt = {
                let mut attempts = self.attempts.lock();
                let n = attempts.entry((name.to_string(), offset, len)).or_insert(0);
                *n += 1;
                *n
            };
            if attempt <= planned {
                self.stats.transient.fetch_add(1, Ordering::Relaxed);
                return Err(PfsError::Transient {
                    file: name.to_string(),
                    offset,
                    attempt,
                });
            }
        }
        let mut buf = self.inner.read(name, offset, len)?;
        self.apply_flips(name, offset, &mut buf);
        Ok(buf)
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        if self.is_lost(name) {
            self.stats.lost_denied.fetch_add(1, Ordering::Relaxed);
            return Err(PfsError::NotFound(name.to_string()));
        }
        self.inner.len(name)
    }

    // read_batch deliberately stays on the default sequential loop:
    // each request must consult the fault schedule through this
    // wrapper's read() so per-op fault identity is preserved.

    // Like append, sync is a write-side op: "lost" files model a dead
    // OST on the *read* path, so a build that wrote the bytes may
    // still flush them.
    fn sync(&self, name: &str) -> Result<(), PfsError> {
        self.inner.sync(name)
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn shard_of(&self, name: &str) -> usize {
        self.inner.shard_of(name)
    }

    fn exists(&self, name: &str) -> bool {
        !self.is_lost(name) && self.inner.exists(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner
            .list()
            .into_iter()
            .filter(|f| !self.is_lost(f))
            .collect()
    }
}

/// Deterministic per-op hash: FNV-1a over the file name, then a
/// splitmix64-style finalizer mixing in seed/offset/len. Zero-dep and
/// stable across platforms, which is all the fault schedule needs.
fn op_hash(seed: u64, file: &str, offset: u64, len: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in file.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h
        .wrapping_add(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(offset.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(len.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBackend;

    fn seeded(rate: f64, max_transient: u32) -> FaultBackend<MemBackend> {
        let be = MemBackend::new();
        be.append("bin0.dat", &[7u8; 4096]).unwrap();
        be.append("bin1.dat", &[9u8; 4096]).unwrap();
        FaultBackend::new(be, FaultPlan::transient(42, rate, max_transient))
    }

    #[test]
    fn transient_errors_are_deterministic_and_bounded() {
        let fb = seeded(0.5, 3);
        let mut failures_a = Vec::new();
        for off in (0..4096).step_by(256) {
            let mut tries = 0u32;
            loop {
                tries += 1;
                match fb.read("bin0.dat", off, 64) {
                    Ok(buf) => {
                        assert_eq!(buf, vec![7u8; 64]);
                        break;
                    }
                    Err(e) => {
                        assert!(e.is_transient());
                        assert!(tries <= 3, "op failed more than max_transient times");
                    }
                }
            }
            failures_a.push(tries - 1);
        }
        assert!(
            failures_a.iter().any(|&n| n > 0),
            "rate 0.5 over 16 ops injected nothing"
        );
        // Same plan + fresh state => identical schedule.
        let fb2 = seeded(0.5, 3);
        for (i, off) in (0..4096).step_by(256).enumerate() {
            let mut tries = 0u32;
            while fb2.read("bin0.dat", off, 64).is_err() {
                tries += 1;
            }
            assert_eq!(tries, failures_a[i], "schedule not deterministic");
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let fb = seeded(0.0, 3);
        for off in (0..4096).step_by(64) {
            fb.read("bin0.dat", off, 64).unwrap();
        }
        assert_eq!(fb.stats().transient_errors(), 0);
    }

    #[test]
    fn lost_files_vanish_everywhere() {
        let mut plan = FaultPlan::none();
        plan.lost_files.push("bin1".to_string());
        let fb = FaultBackend::new(MemBackend::new(), plan);
        fb.inner().append("bin0.dat", &[1]).unwrap();
        fb.inner().append("bin1.dat", &[2]).unwrap();
        assert!(fb.exists("bin0.dat"));
        assert!(!fb.exists("bin1.dat"));
        assert!(matches!(
            fb.read("bin1.dat", 0, 1),
            Err(PfsError::NotFound(_))
        ));
        assert!(matches!(fb.len("bin1.dat"), Err(PfsError::NotFound(_))));
        assert_eq!(fb.list(), vec!["bin0.dat".to_string()]);
        assert!(fb.stats().lost_denials() >= 2);
    }

    #[test]
    fn bit_flips_corrupt_reads_not_storage() {
        let mut plan = FaultPlan::none();
        plan.flips.push(BitFlip {
            file: "bin0".to_string(),
            offset: 10,
            mask: 0x80,
        });
        let fb = FaultBackend::new(MemBackend::new(), plan);
        fb.inner().append("bin0.dat", &[0u8; 32]).unwrap();
        let buf = fb.read("bin0.dat", 0, 32).unwrap();
        assert_eq!(buf[10], 0x80);
        assert_eq!(buf[9], 0);
        // Reads that miss the offset are untouched.
        assert_eq!(fb.read("bin0.dat", 11, 8).unwrap(), vec![0u8; 8]);
        // Underlying bytes are clean.
        assert_eq!(fb.inner().read("bin0.dat", 10, 1).unwrap(), vec![0]);
        assert_eq!(fb.stats().bytes_flipped(), 1);
    }

    #[test]
    fn torn_append_persists_prefix_then_fails_once() {
        let mut plan = FaultPlan::none();
        plan.torn_appends.push(TornAppend {
            file: "meta".to_string(),
            keep: 5,
        });
        let fb = FaultBackend::new(MemBackend::new(), plan);
        let err = fb.append("ds/meta", &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap_err();
        assert!(err.to_string().contains("torn append"));
        assert_eq!(fb.len("ds/meta").unwrap(), 5);
        // The rule fires once; later appends succeed.
        fb.append("ds/meta", &[9, 9]).unwrap();
        assert_eq!(fb.len("ds/meta").unwrap(), 7);
        assert_eq!(fb.stats().torn_appends(), 1);
    }

    #[test]
    fn plan_parser_round_trip() {
        let text = "
            # schedule for CI
            seed = 7
            transient_rate = 0.25
            max_transient = 2
            lose bin3
            flip v.dat 128 0x80
            torn meta 10
        ";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.transient_rate, 0.25);
        assert_eq!(plan.max_transient, 2);
        assert_eq!(plan.lost_files, vec!["bin3".to_string()]);
        assert_eq!(
            plan.flips,
            vec![BitFlip {
                file: "v.dat".to_string(),
                offset: 128,
                mask: 0x80
            }]
        );
        assert_eq!(
            plan.torn_appends,
            vec![TornAppend {
                file: "meta".to_string(),
                keep: 10
            }]
        );

        assert!(FaultPlan::parse("transient_rate = 1.5").is_err());
        assert!(FaultPlan::parse("flip onlyfile").is_err());
        assert!(FaultPlan::parse("bogus directive").is_err());
    }
}
