//! Storage substrate for MLOC: backends plus a simulated parallel
//! file system.
//!
//! The paper evaluates on the Lens cluster's Lustre file system with
//! 2012-era spinning disks; query response times are dominated by
//! seeks, transferred bytes, and contention between processes on a
//! fixed set of Object Storage Targets (OSTs). We do not have that
//! hardware, so this crate substitutes it with:
//!
//! * [`MemBackend`] / [`DirBackend`] — real byte storage (in memory or
//!   in a local directory) for contents;
//! * [`RankIo`] — a per-rank I/O handle that records every read as a
//!   [`ReadOp`] trace while serving bytes from the backend;
//! * [`sim`] — a discrete-event simulator that replays the traces of
//!   all ranks against a [`CostModel`] (striping, per-OST seek cost and
//!   sequential bandwidth, FIFO contention) and charges each rank its
//!   simulated I/O seconds.
//!
//! Because the simulator holds no cache state between queries, every
//! query pays full disk costs — matching the paper's protocol of
//! clearing the system file cache between rounds.

//! # Example
//!
//! ```
//! use mloc_pfs::{simulate_reads, CostModel, MemBackend, RankIo, StorageBackend};
//!
//! let be = MemBackend::new();
//! be.append("data.bin", &[0u8; 4096]).unwrap();
//!
//! // A rank reads through a tracing handle …
//! let mut io = RankIo::new(&be);
//! io.read("data.bin", 0, 1024).unwrap();
//! io.read("data.bin", 2048, 1024).unwrap();
//!
//! // … and the simulator prices the trace on 2012 hardware.
//! let report = simulate_reads(&[io.into_trace()], &CostModel::lens_2012());
//! assert!(report.elapsed() > 0.0);
//! assert_eq!(report.total_bytes, 2048);
//! ```

pub mod backend;
pub mod cost;
pub mod fault;
pub mod localdir;
pub mod mem;
pub mod retry;
pub mod shard;
pub mod sim;

pub use backend::{RankIo, ReadOp, ReadRequest, StorageBackend};
pub use cost::CostModel;
pub use fault::{
    BitFlip, CrashBackend, CrashPlan, FaultBackend, FaultPlan, FaultStats, TornAppend,
};
pub use localdir::{DirBackend, PoolDirBackend};
pub use mem::MemBackend;
pub use retry::{op_token, RetryPolicy};
pub use shard::{stable_name_hash, ShardRouter};
pub use sim::{simulate_reads, RankIoBreakdown, SimReport};

/// Errors from storage backends.
#[derive(Debug)]
pub enum PfsError {
    /// The named file does not exist.
    NotFound(String),
    /// Read past the end of a file.
    OutOfBounds {
        /// File being read.
        file: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file size.
        size: u64,
    },
    /// Transient device error: the same read may succeed if retried.
    /// Injected by [`FaultBackend`]; a real PFS surfaces these as EIO /
    /// EAGAIN from a flaky OST.
    Transient {
        /// File being read.
        file: String,
        /// Requested offset.
        offset: u64,
        /// How many attempts the caller had made when this was raised
        /// (1 = first try).
        attempt: u32,
    },
    /// A transient error outlived the caller's retry budget: the op
    /// was retried until the accumulated simulated backoff hit
    /// [`RetryPolicy::max_total_backoff_s`]. Not itself transient —
    /// the budget is spent — so callers stop instead of backing off
    /// unboundedly.
    RetriesExhausted {
        /// File being read.
        file: String,
        /// Requested offset.
        offset: u64,
        /// Attempts made before the budget ran out.
        attempts: u32,
        /// Simulated backoff accumulated when retrying stopped.
        waited_s: f64,
    },
    /// Underlying OS error (directory backend only).
    Io(std::io::Error),
}

impl PfsError {
    /// Whether retrying the same operation may succeed. Permanent
    /// classes (missing file, out-of-bounds, OS errors) return false.
    pub fn is_transient(&self) -> bool {
        matches!(self, PfsError::Transient { .. })
    }

    /// Whether this error reports an exhausted retry budget.
    pub fn is_retries_exhausted(&self) -> bool {
        matches!(self, PfsError::RetriesExhausted { .. })
    }
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::NotFound(name) => write!(f, "file not found: {name}"),
            PfsError::OutOfBounds {
                file,
                offset,
                len,
                size,
            } => write!(
                f,
                "read [{offset}, {offset}+{len}) past end of {file} (size {size})"
            ),
            PfsError::Transient {
                file,
                offset,
                attempt,
            } => write!(
                f,
                "transient read error on {file} at offset {offset} (attempt {attempt})"
            ),
            PfsError::RetriesExhausted {
                file,
                offset,
                attempts,
                waited_s,
            } => write!(
                f,
                "retry budget exhausted reading {file} at offset {offset} \
                 ({attempts} attempts, {waited_s:.6}s simulated backoff)"
            ),
            PfsError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PfsError {}

impl From<std::io::Error> for PfsError {
    fn from(e: std::io::Error) -> Self {
        PfsError::Io(e)
    }
}
