//! Local-directory storage backends: real files on the host filesystem.
//!
//! Used by examples, the CLI and integration tests to demonstrate that
//! the MLOC on-disk formats are genuinely persistent; experiment timing
//! always comes from the simulator, not from the host disk.
//!
//! Two backends share one substrate:
//!
//! * [`DirBackend`] — the plain blocking backend. It keeps a per-file
//!   handle cache so a read costs one positional `read_at`, not an
//!   `open`/`seek`/`read`/`close` cycle per call (the pre-cache
//!   behavior survives behind [`DirBackend::uncached`] for
//!   regression-testing and as a benchmark baseline).
//! * [`PoolDirBackend`] — an io_uring-style submission-queue emulation:
//!   a bounded worker pool services a whole [`ReadRequest`] batch
//!   concurrently over the same handle cache, returning results in
//!   submission order with per-request error identity.

use crate::backend::{ReadRequest, StorageBackend};
use crate::PfsError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Cache of open file handles, keyed by escaped path. Handles are
/// opened read+append once and shared; positional reads (`read_at`)
/// need no seek and never move the append cursor. The open counter
/// exists so tests can assert the cache actually prevents reopening.
#[derive(Debug, Default)]
struct HandleCache {
    handles: Mutex<HashMap<PathBuf, Arc<fs::File>>>,
    opens: AtomicU64,
}

impl HandleCache {
    /// Fetch (or open and cache) the handle for `path`. `create`
    /// controls whether a missing file is created (append path) or
    /// reported as [`PfsError::NotFound`] (read path).
    fn get(&self, path: &Path, name: &str, create: bool) -> Result<Arc<fs::File>, PfsError> {
        if let Some(f) = self.handles.lock().get(path) {
            return Ok(Arc::clone(f));
        }
        let file = fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(create)
            .open(path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    PfsError::NotFound(name.to_string())
                } else {
                    PfsError::Io(e)
                }
            })?;
        self.opens.fetch_add(1, Ordering::Relaxed);
        let file = Arc::new(file);
        // Another thread may have raced us; keep whichever landed
        // first so every caller shares one handle per file.
        let mut handles = self.handles.lock();
        Ok(Arc::clone(
            handles.entry(path.to_path_buf()).or_insert(file),
        ))
    }

    fn invalidate(&self, path: &Path) {
        self.handles.lock().remove(path);
    }
}

/// State shared by every view onto one backing directory: the root,
/// the handle cache, and the append serialization lock.
#[derive(Debug)]
struct DirInner {
    root: PathBuf,
    cache: HandleCache,
    // Serializes append/create/sync operations; reads are lock-free.
    write_lock: Mutex<()>,
    // Handle on the root directory itself, fsynced after creating or
    // removing entries on the durable path. Without it a crash can
    // lose the *directory entry* of a file whose footer already
    // claims the extent committed — the bytes survive, the name does
    // not. `None` where directories cannot be opened as files.
    dir_handle: Option<fs::File>,
}

impl DirInner {
    fn path_of(&self, name: &str) -> PathBuf {
        // Logical names may contain '/'; escape to keep a flat dir.
        self.root.join(name.replace('/', "__"))
    }

    /// Flush the directory entry table. Called with the write lock
    /// held, after any operation that adds or removes an entry.
    fn sync_dir(&self) -> Result<(), PfsError> {
        if let Some(d) = &self.dir_handle {
            d.sync_all()?;
        }
        Ok(())
    }

    fn create(&self, name: &str) -> Result<(), PfsError> {
        let _g = self.write_lock.lock();
        let path = self.path_of(name);
        // Truncation changes the inode's size out from under any
        // cached handle's idea of "end", so drop it and reopen lazily.
        self.cache.invalidate(&path);
        fs::File::create(path)?;
        self.sync_dir()?;
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), PfsError> {
        let _g = self.write_lock.lock();
        let path = self.path_of(name);
        self.cache.invalidate(&path);
        fs::remove_file(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                PfsError::NotFound(name.to_string())
            } else {
                PfsError::Io(e)
            }
        })?;
        self.sync_dir()?;
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8], cached: bool) -> Result<u64, PfsError> {
        let _g = self.write_lock.lock();
        let path = self.path_of(name);
        if cached {
            let f = self.cache.get(&path, name, true)?;
            let offset = f.metadata()?.len();
            (&*f).write_all(data)?;
            Ok(offset)
        } else {
            use std::io::{Seek, SeekFrom};
            self.cache.opens.fetch_add(1, Ordering::Relaxed);
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            let offset = f.seek(SeekFrom::End(0))?;
            f.write_all(data)?;
            Ok(offset)
        }
    }

    fn read(&self, name: &str, offset: u64, len: u64, cached: bool) -> Result<Vec<u8>, PfsError> {
        let path = self.path_of(name);
        if cached {
            let f = self.cache.get(&path, name, false)?;
            let size = f.metadata()?.len();
            bounds_check(name, offset, len, size)?;
            let mut buf = vec![0u8; len as usize];
            read_exact_at(&f, &mut buf, offset, &self.write_lock)?;
            Ok(buf)
        } else {
            use std::io::{Read, Seek, SeekFrom};
            self.cache.opens.fetch_add(1, Ordering::Relaxed);
            let mut f = fs::File::open(&path).map_err(|_| PfsError::NotFound(name.to_string()))?;
            let size = f.metadata()?.len();
            bounds_check(name, offset, len, size)?;
            f.seek(SeekFrom::Start(offset))?;
            let mut buf = vec![0u8; len as usize];
            f.read_exact(&mut buf)?;
            Ok(buf)
        }
    }

    fn len(&self, name: &str, cached: bool) -> Result<u64, PfsError> {
        if cached {
            let path = self.path_of(name);
            Ok(self.cache.get(&path, name, false)?.metadata()?.len())
        } else {
            fs::metadata(self.path_of(name))
                .map(|m| m.len())
                .map_err(|_| PfsError::NotFound(name.to_string()))
        }
    }

    fn sync(&self, name: &str) -> Result<(), PfsError> {
        let _g = self.write_lock.lock();
        let path = self.path_of(name);
        let f = self.cache.get(&path, name, false)?;
        f.sync_all()?;
        // An append may have created the file without going through
        // create(); the entry must be durable before the caller takes
        // the sync as a commit point.
        self.sync_dir()?;
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().is_file())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .map(|n| n.replace("__", "/"))
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }
}

fn bounds_check(name: &str, offset: u64, len: u64, size: u64) -> Result<(), PfsError> {
    if offset.checked_add(len).is_none_or(|e| e > size) {
        return Err(PfsError::OutOfBounds {
            file: name.to_string(),
            offset,
            len,
            size,
        });
    }
    Ok(())
}

#[cfg(unix)]
fn read_exact_at(
    f: &fs::File,
    buf: &mut [u8],
    offset: u64,
    _lock: &Mutex<()>,
) -> Result<(), PfsError> {
    f.read_exact_at(buf, offset)?;
    Ok(())
}

// Non-unix fallback: a shared handle has one cursor, so positional
// reads must serialize against appends and each other.
#[cfg(not(unix))]
fn read_exact_at(
    mut f: &fs::File,
    buf: &mut [u8],
    offset: u64,
    lock: &Mutex<()>,
) -> Result<(), PfsError> {
    use std::io::{Read, Seek, SeekFrom};
    let _g = lock.lock();
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)?;
    Ok(())
}

/// Stores each logical file as `<root>/<escaped name>`, reading through
/// a shared per-file handle cache.
#[derive(Debug)]
pub struct DirBackend {
    inner: Arc<DirInner>,
    cached: bool,
}

impl DirBackend {
    /// Open (creating if needed) a backend rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<Self, PfsError> {
        Ok(DirBackend {
            inner: DirBackend::open_inner(root)?,
            cached: true,
        })
    }

    /// A backend that reopens the file on every operation — the
    /// pre-handle-cache behavior. Kept as the regression baseline for
    /// `io_bench` and the open-count test; never the right choice for
    /// real use.
    pub fn uncached(root: impl AsRef<Path>) -> Result<Self, PfsError> {
        Ok(DirBackend {
            inner: DirBackend::open_inner(root)?,
            cached: false,
        })
    }

    fn open_inner(root: impl AsRef<Path>) -> Result<Arc<DirInner>, PfsError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        // Best effort: platforms that cannot open a directory as a
        // file (non-unix) skip directory fsync rather than fail.
        let dir_handle = fs::File::open(&root).ok();
        Ok(Arc::new(DirInner {
            root,
            cache: HandleCache::default(),
            write_lock: Mutex::new(()),
            dir_handle,
        }))
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    /// How many times a file has actually been `open`ed so far. The
    /// handle cache keeps this at one per distinct file regardless of
    /// how many reads/appends are issued.
    pub fn open_count(&self) -> u64 {
        self.inner.cache.opens.load(Ordering::Relaxed)
    }
}

impl StorageBackend for DirBackend {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        self.inner.create(name)
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        self.inner.append(name, data, self.cached)
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        self.inner.read(name, offset, len, self.cached)
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        self.inner.len(name, self.cached)
    }

    fn sync(&self, name: &str) -> Result<(), PfsError> {
        self.inner.sync(name)
    }

    fn remove(&self, name: &str) -> Result<(), PfsError> {
        self.inner.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }
}

/// A read job travelling to the worker pool: a contiguous slice of
/// the batch starting at `start`. Chunking the batch into one job per
/// pool slot keeps the queue synchronization cost per *batch* (not per
/// request), which matters as much as the handle cache on machines
/// where an `open(2)` is cheaper than a thread wakeup.
struct Job {
    start: usize,
    reqs: Vec<ReadRequest>,
    done: mpsc::Sender<JobResult>,
}

/// A completed job: the chunk's start slot plus one result per request.
type JobResult = (usize, Vec<Result<Vec<u8>, PfsError>>);

/// Submission-queue emulation over a directory: a bounded pool of
/// `depth` workers drains read batches concurrently through the shared
/// handle cache. Writes and metadata operations stay on the caller's
/// thread (the build path is already parallel above this layer).
pub struct PoolDirBackend {
    inner: Arc<DirInner>,
    depth: usize,
    queue: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Latency threshold after which a straggling batch is hedged:
    /// its unfinished chunks are re-submitted to the pool and the
    /// first completion per slot wins. `None` disables hedging.
    hedge: Option<std::time::Duration>,
    hedged_batches: AtomicU64,
}

impl std::fmt::Debug for PoolDirBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolDirBackend")
            .field("root", &self.inner.root)
            .field("depth", &self.depth)
            .finish()
    }
}

impl PoolDirBackend {
    /// Open a pool of `depth` workers (clamped to at least 1) over
    /// `root`.
    pub fn new(root: impl AsRef<Path>, depth: usize) -> Result<Self, PfsError> {
        Ok(PoolDirBackend::over(DirBackend::open_inner(root)?, depth))
    }

    /// Share the handle cache (and directory) of an existing
    /// [`DirBackend`], so both views see one open handle per file.
    pub fn sharing(dir: &DirBackend, depth: usize) -> Self {
        PoolDirBackend::over(Arc::clone(&dir.inner), depth)
    }

    fn over(inner: Arc<DirInner>, depth: usize) -> Self {
        let depth = depth.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..depth)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only while dequeuing, so
                    // the other workers can pick up jobs while this
                    // one reads.
                    let job = match rx.lock().recv() {
                        Ok(job) => job,
                        Err(_) => return,
                    };
                    let results = job
                        .reqs
                        .iter()
                        .map(|r| inner.read(&r.file, r.offset, r.len, true))
                        .collect();
                    // The batch may have been abandoned; that's fine.
                    let _ = job.done.send((job.start, results));
                })
            })
            .collect();
        PoolDirBackend {
            inner,
            depth,
            queue: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            hedge: None,
            hedged_batches: AtomicU64::new(0),
        }
    }

    /// Enable hedged reads: a batch chunk still unfinished after
    /// `threshold_s` seconds is re-submitted to the pool, and the
    /// first result per slot wins. Both submissions read the same
    /// bytes through the same handle cache, so results stay
    /// byte-identical whichever side finishes first — the hedge only
    /// cuts tail latency when a worker stalls.
    pub fn with_hedge(mut self, threshold_s: f64) -> Self {
        self.hedge = Some(std::time::Duration::from_secs_f64(threshold_s.max(0.0)));
        self
    }

    /// How many batches have had chunks re-submitted by the hedge.
    /// Timing-dependent: advisory for stats, never pinned by tests.
    pub fn hedged_batches(&self) -> u64 {
        self.hedged_batches.load(Ordering::Relaxed)
    }

    /// The pool's queue depth (worker count).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// A blocking [`DirBackend`] view over the same directory and
    /// handle cache.
    pub fn dir_view(&self) -> DirBackend {
        DirBackend {
            inner: Arc::clone(&self.inner),
            cached: true,
        }
    }

    /// How many times a file has actually been `open`ed so far.
    pub fn open_count(&self) -> u64 {
        self.inner.cache.opens.load(Ordering::Relaxed)
    }
}

impl Drop for PoolDirBackend {
    fn drop(&mut self) {
        // Closing the channel wakes every worker with RecvError.
        *self.queue.lock() = None;
        for w in self.workers.lock().drain(..) {
            let _ = w.join();
        }
    }
}

impl StorageBackend for PoolDirBackend {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        self.inner.create(name)
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        self.inner.append(name, data, true)
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        self.inner.read(name, offset, len, true)
    }

    fn read_batch(&self, requests: &[ReadRequest]) -> Vec<Result<Vec<u8>, PfsError>> {
        if requests.len() <= 1 {
            // Nothing to overlap; skip the queue round-trip.
            return requests
                .iter()
                .map(|r| self.inner.read(&r.file, r.offset, r.len, true))
                .collect();
        }
        // One contiguous chunk per pool slot: `depth` queue round
        // trips for the whole batch, each worker draining its chunk
        // through the shared handle cache.
        let chunk = requests.len().div_ceil(self.depth);
        let chunks: Vec<(usize, &[ReadRequest])> = requests
            .chunks(chunk)
            .enumerate()
            .map(|(i, reqs)| (i * chunk, reqs))
            .collect();
        let (done_tx, done_rx) = mpsc::channel();
        let submit = |batch: &[(usize, &[ReadRequest])]| {
            let queue = self.queue.lock();
            let tx = queue.as_ref().expect("pool alive while backend exists");
            for &(start, reqs) in batch {
                tx.send(Job {
                    start,
                    reqs: reqs.to_vec(),
                    done: done_tx.clone(),
                })
                .expect("workers alive while backend exists");
            }
        };
        submit(&chunks);
        let mut out: Vec<Option<Result<Vec<u8>, PfsError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut finished: std::collections::HashSet<usize> = Default::default();
        let mut remaining = requests.len();
        let mut hedged = false;
        while remaining > 0 {
            let (start, results) = match self.hedge {
                // Hedge once: if no chunk completes within the
                // threshold, re-submit every unfinished chunk and let
                // the first completion per chunk win.
                Some(t) if !hedged => match done_rx.recv_timeout(t) {
                    Ok(msg) => msg,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        hedged = true;
                        self.hedged_batches.fetch_add(1, Ordering::Relaxed);
                        let stragglers: Vec<_> = chunks
                            .iter()
                            .filter(|(s, _)| !finished.contains(s))
                            .copied()
                            .collect();
                        submit(&stragglers);
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                },
                _ => match done_rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                },
            };
            if !finished.insert(start) {
                continue; // the hedge twin already reported this chunk
            }
            for (i, res) in results.into_iter().enumerate() {
                out[start + i] = Some(res);
                remaining -= 1;
            }
        }
        out.into_iter()
            .map(|o| o.expect("every submitted job reports"))
            .collect()
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        self.inner.len(name, true)
    }

    fn sync(&self, name: &str) -> Result<(), PfsError> {
        self.inner.sync(name)
    }

    fn remove(&self, name: &str) -> Result<(), PfsError> {
        self.inner.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mloc-pfs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_on_disk() {
        let root = tmpdir("rt");
        let be = DirBackend::new(&root).unwrap();
        assert_eq!(be.append("bins/bin0.dat", &[1, 2, 3]).unwrap(), 0);
        assert_eq!(be.append("bins/bin0.dat", &[4]).unwrap(), 3);
        assert_eq!(be.read("bins/bin0.dat", 1, 2).unwrap(), vec![2, 3]);
        assert_eq!(be.len("bins/bin0.dat").unwrap(), 4);
        assert!(be.exists("bins/bin0.dat"));
        assert_eq!(be.list(), vec!["bins/bin0.dat".to_string()]);
        assert!(matches!(
            be.read("bins/bin0.dat", 3, 2),
            Err(PfsError::OutOfBounds { .. })
        ));
        be.sync("bins/bin0.dat").unwrap();
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        let root = tmpdir("missing");
        let be = DirBackend::new(&root).unwrap();
        assert!(matches!(be.read("ghost", 0, 1), Err(PfsError::NotFound(_))));
        assert!(matches!(be.len("ghost"), Err(PfsError::NotFound(_))));
        let ub = DirBackend::uncached(&root).unwrap();
        assert!(matches!(ub.read("ghost", 0, 1), Err(PfsError::NotFound(_))));
        assert!(matches!(ub.len("ghost"), Err(PfsError::NotFound(_))));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn handle_cache_opens_each_file_once() {
        let root = tmpdir("opens");
        let be = DirBackend::new(&root).unwrap();
        be.append("a.dat", &[0u8; 512]).unwrap();
        be.append("b.dat", &[1u8; 512]).unwrap();
        let after_setup = be.open_count();
        assert_eq!(after_setup, 2, "one open per distinct file");
        for i in 0..100 {
            be.read("a.dat", i % 256, 64).unwrap();
            be.read("b.dat", i % 256, 64).unwrap();
            be.len("a.dat").unwrap();
        }
        be.append("a.dat", &[2u8; 16]).unwrap();
        assert_eq!(
            be.open_count(),
            after_setup,
            "reads/appends/len must reuse cached handles"
        );

        // The uncached (seed-era) mode really does reopen per call.
        let ub = DirBackend::uncached(&root).unwrap();
        let before = ub.open_count();
        for _ in 0..10 {
            ub.read("a.dat", 0, 64).unwrap();
        }
        assert_eq!(ub.open_count() - before, 10);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn create_truncates_under_cache() {
        let root = tmpdir("trunc");
        let be = DirBackend::new(&root).unwrap();
        be.append("f", &[9u8; 64]).unwrap();
        assert_eq!(be.len("f").unwrap(), 64);
        be.create("f").unwrap();
        assert_eq!(be.len("f").unwrap(), 0);
        assert_eq!(be.append("f", &[1, 2]).unwrap(), 0);
        assert_eq!(be.read("f", 0, 2).unwrap(), vec![1, 2]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pool_batch_matches_sequential_and_keeps_error_identity() {
        let root = tmpdir("pool");
        let pool = PoolDirBackend::new(&root, 4).unwrap();
        pool.append(
            "x.dat",
            &(0u16..512).flat_map(u16::to_le_bytes).collect::<Vec<_>>(),
        )
        .unwrap();
        pool.append("y.dat", &[7u8; 256]).unwrap();
        let reqs = vec![
            ReadRequest::new("x.dat", 0, 16),
            ReadRequest::new("y.dat", 100, 56),
            ReadRequest::new("x.dat", 0, 16),    // duplicate
            ReadRequest::new("x.dat", 8, 16),    // overlapping
            ReadRequest::new("ghost", 0, 4),     // missing file
            ReadRequest::new("y.dat", 250, 100), // out of range
        ];
        let batch = pool.read_batch(&reqs);
        assert_eq!(batch.len(), reqs.len());
        for (req, got) in reqs.iter().zip(&batch) {
            match pool.read(&req.file, req.offset, req.len) {
                Ok(want) => assert_eq!(got.as_ref().unwrap(), &want),
                Err(_) => assert!(got.is_err()),
            }
        }
        assert!(matches!(batch[4], Err(PfsError::NotFound(_))));
        assert!(matches!(batch[5], Err(PfsError::OutOfBounds { .. })));
        assert_eq!(pool.depth(), 4);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn remove_deletes_on_disk_and_errors_on_missing() {
        let root = tmpdir("remove");
        let be = DirBackend::new(&root).unwrap();
        be.append("ds/meta", &[1, 2, 3]).unwrap();
        be.sync("ds/meta").unwrap();
        be.remove("ds/meta").unwrap();
        assert!(!be.exists("ds/meta"));
        assert!(matches!(
            be.read("ds/meta", 0, 1),
            Err(PfsError::NotFound(_))
        ));
        assert!(matches!(be.remove("ds/meta"), Err(PfsError::NotFound(_))));
        // Remove invalidates the cached handle: recreating the file
        // starts from scratch.
        be.append("ds/meta", &[9]).unwrap();
        assert_eq!(be.len("ds/meta").unwrap(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn hedged_pool_batch_is_byte_identical() {
        let root = tmpdir("hedge");
        let plain = PoolDirBackend::new(&root, 3).unwrap();
        for f in 0..4 {
            plain
                .append(&format!("f{f}.dat"), &vec![f as u8; 2048])
                .unwrap();
        }
        let reqs: Vec<ReadRequest> = (0..64)
            .map(|i| ReadRequest::new(format!("f{}.dat", i % 4), (i / 4) * 32, 32))
            .collect();
        let want = plain.read_batch(&reqs);
        // Zero threshold: the hedge fires on essentially every batch,
        // so duplicate submissions race — results must not change.
        let hedged = PoolDirBackend::new(&root, 3).unwrap().with_hedge(0.0);
        for _ in 0..5 {
            let got = hedged.read_batch(&reqs);
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
            }
        }
        assert!(hedged.hedged_batches() >= 1, "zero threshold never hedged");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pool_shares_handle_cache_with_dir_view() {
        let root = tmpdir("share");
        let pool = PoolDirBackend::new(&root, 2).unwrap();
        let dir = pool.dir_view();
        dir.append("f", &[5u8; 1024]).unwrap();
        let opens = pool.open_count();
        let reqs: Vec<ReadRequest> = (0..32).map(|i| ReadRequest::new("f", i * 8, 8)).collect();
        for r in pool.read_batch(&reqs) {
            r.unwrap();
        }
        dir.read("f", 0, 8).unwrap();
        assert_eq!(pool.open_count(), opens, "pool and dir view share handles");
        fs::remove_dir_all(&root).unwrap();
    }
}
