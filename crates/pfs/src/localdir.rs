//! Local-directory storage backend: real files on the host filesystem.
//!
//! Used by examples and integration tests to demonstrate that the MLOC
//! on-disk formats are genuinely persistent; experiment timing always
//! comes from the simulator, not from the host disk.

use crate::backend::StorageBackend;
use crate::PfsError;
use parking_lot::Mutex;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Stores each logical file as `<root>/<escaped name>`.
#[derive(Debug)]
pub struct DirBackend {
    root: PathBuf,
    // Serializes append operations; reads are lock-free.
    write_lock: Mutex<()>,
}

impl DirBackend {
    /// Open (creating if needed) a backend rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<Self, PfsError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(DirBackend {
            root,
            write_lock: Mutex::new(()),
        })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> PathBuf {
        // Logical names may contain '/'; escape to keep a flat dir.
        self.root.join(name.replace('/', "__"))
    }
}

impl StorageBackend for DirBackend {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        let _g = self.write_lock.lock();
        fs::File::create(self.path_of(name))?;
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        let _g = self.write_lock.lock();
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path_of(name))?;
        let offset = f.seek(SeekFrom::End(0))?;
        f.write_all(data)?;
        Ok(offset)
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        let path = self.path_of(name);
        let mut f = fs::File::open(&path).map_err(|_| PfsError::NotFound(name.to_string()))?;
        let size = f.metadata()?.len();
        if offset.checked_add(len).is_none_or(|e| e > size) {
            return Err(PfsError::OutOfBounds {
                file: name.to_string(),
                offset,
                len,
                size,
            });
        }
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        fs::metadata(self.path_of(name))
            .map(|m| m.len())
            .map_err(|_| PfsError::NotFound(name.to_string()))
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().is_file())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .map(|n| n.replace("__", "/"))
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mloc-pfs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_on_disk() {
        let root = tmpdir("rt");
        let be = DirBackend::new(&root).unwrap();
        assert_eq!(be.append("bins/bin0.dat", &[1, 2, 3]).unwrap(), 0);
        assert_eq!(be.append("bins/bin0.dat", &[4]).unwrap(), 3);
        assert_eq!(be.read("bins/bin0.dat", 1, 2).unwrap(), vec![2, 3]);
        assert_eq!(be.len("bins/bin0.dat").unwrap(), 4);
        assert!(be.exists("bins/bin0.dat"));
        assert_eq!(be.list(), vec!["bins/bin0.dat".to_string()]);
        assert!(matches!(
            be.read("bins/bin0.dat", 3, 2),
            Err(PfsError::OutOfBounds { .. })
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        let root = tmpdir("missing");
        let be = DirBackend::new(&root).unwrap();
        assert!(matches!(be.read("ghost", 0, 1), Err(PfsError::NotFound(_))));
        assert!(matches!(be.len("ghost"), Err(PfsError::NotFound(_))));
        fs::remove_dir_all(&root).unwrap();
    }
}
