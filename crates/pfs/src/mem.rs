//! In-memory storage backend.

use crate::backend::StorageBackend;
use crate::PfsError;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A thread-safe in-memory file store. This is the default backend for
/// experiments: contents live in RAM while all timing comes from the
/// trace-driven simulator, so experiments are fast *and* disk-faithful.
#[derive(Debug, Default)]
pub struct MemBackend {
    files: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        self.files.write().insert(name.to_string(), Vec::new());
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        let mut files = self.files.write();
        let file = files.entry(name.to_string()).or_default();
        let offset = file.len() as u64;
        file.extend_from_slice(data);
        Ok(offset)
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        let files = self.files.read();
        let file = files
            .get(name)
            .ok_or_else(|| PfsError::NotFound(name.to_string()))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= file.len() as u64)
            .ok_or_else(|| PfsError::OutOfBounds {
                file: name.to_string(),
                offset,
                len,
                size: file.len() as u64,
            })?;
        Ok(file[offset as usize..end as usize].to_vec())
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        self.files
            .read()
            .get(name)
            .map(|f| f.len() as u64)
            .ok_or_else(|| PfsError::NotFound(name.to_string()))
    }

    fn remove(&self, name: &str) -> Result<(), PfsError> {
        self.files
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| PfsError::NotFound(name.to_string()))
    }

    fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read() {
        let be = MemBackend::new();
        assert_eq!(be.append("a", &[1, 2]).unwrap(), 0);
        assert_eq!(be.append("a", &[3]).unwrap(), 2);
        assert_eq!(be.read("a", 0, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(be.len("a").unwrap(), 3);
        assert!(be.exists("a"));
        assert!(!be.exists("b"));
    }

    #[test]
    fn create_truncates() {
        let be = MemBackend::new();
        be.append("a", &[9; 10]).unwrap();
        be.create("a").unwrap();
        assert_eq!(be.len("a").unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_read_fails() {
        let be = MemBackend::new();
        be.append("a", &[0; 4]).unwrap();
        assert!(matches!(
            be.read("a", 2, 3),
            Err(PfsError::OutOfBounds { .. })
        ));
        assert!(matches!(
            be.read("a", u64::MAX, 1),
            Err(PfsError::OutOfBounds { .. })
        ));
        assert!(matches!(be.read("nope", 0, 1), Err(PfsError::NotFound(_))));
    }

    #[test]
    fn remove_deletes_and_errors_on_missing() {
        let be = MemBackend::new();
        be.append("a", &[1, 2, 3]).unwrap();
        be.remove("a").unwrap();
        assert!(!be.exists("a"));
        assert!(matches!(be.remove("a"), Err(PfsError::NotFound(_))));
    }

    #[test]
    fn list_and_totals() {
        let be = MemBackend::new();
        be.append("x", &[0; 7]).unwrap();
        be.append("y", &[0; 5]).unwrap();
        assert_eq!(be.list(), vec!["x".to_string(), "y".to_string()]);
        assert_eq!(be.total_bytes(), 12);
    }
}
