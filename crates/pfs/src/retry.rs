//! Bounded, deterministic retry with exponential backoff.
//!
//! Transient PFS errors (a flaky OST returning EIO, an injected
//! [`crate::fault::FaultBackend`] fault) are worth retrying; permanent
//! ones (missing file, out-of-bounds read) are not. [`RetryPolicy`]
//! encodes the schedule. Backoff time is *simulated*, never slept:
//! the query engine runs against a cost simulator, so wall-clock
//! sleeping would only slow the tests down without changing any
//! reported number. Callers accumulate [`RetryPolicy::backoff_s`]
//! into their own wait-time counter instead.
//!
//! Two refinements temper the raw exponential curve:
//!
//! * **Full jitter** — with [`RetryPolicy::jitter_seed`] set, the wait
//!   before each retry is drawn uniformly from `[0, curve)` by a
//!   seeded hash of `(seed, attempt, op token)`. Deterministic: the
//!   same policy over the same ops always simulates the same waits,
//!   yet distinct ops no longer retry in lockstep (the thundering-herd
//!   problem full jitter exists to break).
//! * **A per-query budget** — [`RetryPolicy::max_total_backoff_s`]
//!   caps the *total* simulated backoff a caller may accumulate. Once
//!   the next wait would cross it, retrying stops with a typed
//!   [`crate::PfsError::RetriesExhausted`] instead of backing off
//!   unboundedly.

/// A bounded exponential-backoff retry schedule.
///
/// `max_attempts` counts the first try: `max_attempts == 1` means no
/// retries at all. Backoff before attempt `k` (k = 2, 3, ...) is
/// `base_backoff_s * multiplier^(k - 2)` seconds — deterministic; with
/// [`Self::jitter_seed`] set, that curve value becomes the *upper
/// bound* of a seeded uniform draw (full jitter) instead of the wait
/// itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (>= 1).
    pub max_attempts: u32,
    /// Simulated wait before the first retry, in seconds.
    pub base_backoff_s: f64,
    /// Growth factor applied per subsequent retry.
    pub multiplier: f64,
    /// Seed for deterministic full jitter. `None` (the default) keeps
    /// the raw exponential curve, byte-for-byte compatible with the
    /// pre-jitter behavior.
    pub jitter_seed: Option<u64>,
    /// Budget on the total simulated backoff one caller (one query)
    /// may accumulate, in seconds. `f64::INFINITY` (the default)
    /// means unbounded.
    pub max_total_backoff_s: f64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail on the first transient error.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_s: 0.0,
            multiplier: 2.0,
            jitter_seed: None,
            max_total_backoff_s: f64::INFINITY,
        }
    }

    /// `attempts` total attempts with the default 1ms/2x backoff curve.
    pub fn with_attempts(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            ..RetryPolicy::none()
        }
    }

    /// Enable deterministic full jitter with this seed.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Cap the total simulated backoff a caller may accumulate.
    pub fn with_budget_s(mut self, budget_s: f64) -> Self {
        self.max_total_backoff_s = budget_s.max(0.0);
        self
    }

    /// Simulated backoff in seconds before attempt `attempt`
    /// (1-based; attempt 1 is the initial try and waits nothing).
    /// This is the raw curve, ignoring jitter.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            return 0.0;
        }
        self.base_backoff_s * self.multiplier.powi(attempt as i32 - 2)
    }

    /// Simulated backoff before attempt `attempt` of the operation
    /// identified by `token` (see [`op_token`]). Without a jitter
    /// seed this equals [`Self::backoff_s`]; with one, it is a
    /// deterministic uniform draw from `[0, backoff_s(attempt))`.
    pub fn backoff_s_for(&self, attempt: u32, token: u64) -> f64 {
        let curve = self.backoff_s(attempt);
        match self.jitter_seed {
            None => curve,
            Some(seed) if curve > 0.0 => {
                let h = mix(seed ^ token, u64::from(attempt));
                // Top 53 bits -> uniform in [0, 1).
                let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
                curve * unit
            }
            Some(_) => 0.0,
        }
    }

    /// Whether another attempt is allowed after `attempt` attempts
    /// have already failed.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// Whether accumulating `next_wait_s` on top of `waited_s` would
    /// exceed the per-query budget.
    pub fn budget_exceeded(&self, waited_s: f64, next_wait_s: f64) -> bool {
        waited_s + next_wait_s > self.max_total_backoff_s
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Stable per-operation token for jitter: FNV-1a over the file name
/// mixed with offset and length. Two different ops retry on different
/// (but each individually deterministic) schedules.
pub fn op_token(file: &str, offset: u64, len: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in file.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ offset.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ len.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

/// splitmix64-style finalizer: zero-dep, platform-stable.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_means_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.should_retry(1));
        assert_eq!(p.backoff_s(1), 0.0);
        assert_eq!(p.max_total_backoff_s, f64::INFINITY);
        assert_eq!(p.jitter_seed, None);
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff_s: 0.5,
            multiplier: 2.0,
            ..RetryPolicy::none()
        };
        assert_eq!(p.backoff_s(1), 0.0);
        assert_eq!(p.backoff_s(2), 0.5);
        assert_eq!(p.backoff_s(3), 1.0);
        assert_eq!(p.backoff_s(4), 2.0);
        assert!(p.should_retry(1));
        assert!(p.should_retry(3));
        assert!(!p.should_retry(4));
    }

    #[test]
    fn with_attempts_clamps_to_one() {
        assert_eq!(RetryPolicy::with_attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::with_attempts(5).max_attempts, 5);
    }

    #[test]
    fn unjittered_backoff_for_matches_curve() {
        let p = RetryPolicy::with_attempts(4);
        for attempt in 1..=4 {
            assert_eq!(p.backoff_s_for(attempt, 7), p.backoff_s(attempt));
        }
    }

    #[test]
    fn jitter_is_bounded_deterministic_and_spread() {
        let p = RetryPolicy::with_attempts(6).with_jitter(42);
        let q = RetryPolicy::with_attempts(6).with_jitter(42);
        let mut distinct = std::collections::BTreeSet::new();
        for op in 0..32u64 {
            let token = op_token("f", op * 64, 64);
            for attempt in 2..=6 {
                let w = p.backoff_s_for(attempt, token);
                assert!(w >= 0.0 && w < p.backoff_s(attempt), "jitter out of range");
                assert_eq!(
                    w,
                    q.backoff_s_for(attempt, token),
                    "jitter not deterministic"
                );
                distinct.insert((w * 1e12) as u64);
            }
        }
        assert!(
            distinct.len() > 100,
            "jitter draws collapsed: {}",
            distinct.len()
        );
        // A different seed gives a different schedule.
        let r = RetryPolicy::with_attempts(6).with_jitter(43);
        assert_ne!(
            p.backoff_s_for(3, op_token("f", 0, 64)),
            r.backoff_s_for(3, op_token("f", 0, 64))
        );
        // Attempt 1 still waits nothing.
        assert_eq!(p.backoff_s_for(1, 99), 0.0);
    }

    #[test]
    fn budget_accounting() {
        let p = RetryPolicy::with_attempts(8).with_budget_s(0.005);
        assert!(!p.budget_exceeded(0.0, 0.001));
        assert!(!p.budget_exceeded(0.004, 0.001));
        assert!(p.budget_exceeded(0.005, 0.001));
        let unbounded = RetryPolicy::with_attempts(8);
        assert!(!unbounded.budget_exceeded(1e12, 1e12));
    }

    #[test]
    fn op_tokens_differ_per_op() {
        assert_ne!(op_token("a", 0, 4), op_token("b", 0, 4));
        assert_ne!(op_token("a", 0, 4), op_token("a", 4, 4));
        assert_ne!(op_token("a", 0, 4), op_token("a", 0, 8));
        assert_eq!(op_token("a", 0, 4), op_token("a", 0, 4));
    }
}
