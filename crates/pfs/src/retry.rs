//! Bounded, deterministic retry with exponential backoff.
//!
//! Transient PFS errors (a flaky OST returning EIO, an injected
//! [`crate::fault::FaultBackend`] fault) are worth retrying; permanent
//! ones (missing file, out-of-bounds read) are not. [`RetryPolicy`]
//! encodes the schedule. Backoff time is *simulated*, never slept:
//! the query engine runs against a cost simulator, so wall-clock
//! sleeping would only slow the tests down without changing any
//! reported number. Callers accumulate [`RetryPolicy::backoff_s`]
//! into their own wait-time counter instead.

/// A bounded exponential-backoff retry schedule.
///
/// `max_attempts` counts the first try: `max_attempts == 1` means no
/// retries at all. Backoff before attempt `k` (k = 2, 3, ...) is
/// `base_backoff_s * multiplier^(k - 2)` seconds — deterministic, no
/// jitter, so replayed runs report identical wait times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (>= 1).
    pub max_attempts: u32,
    /// Simulated wait before the first retry, in seconds.
    pub base_backoff_s: f64,
    /// Growth factor applied per subsequent retry.
    pub multiplier: f64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail on the first transient error.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_s: 0.0,
            multiplier: 2.0,
        }
    }

    /// `attempts` total attempts with the default 1ms/2x backoff curve.
    pub fn with_attempts(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_backoff_s: 1e-3,
            multiplier: 2.0,
        }
    }

    /// Simulated backoff in seconds before attempt `attempt`
    /// (1-based; attempt 1 is the initial try and waits nothing).
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            return 0.0;
        }
        self.base_backoff_s * self.multiplier.powi(attempt as i32 - 2)
    }

    /// Whether another attempt is allowed after `attempt` attempts
    /// have already failed.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_means_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.should_retry(1));
        assert_eq!(p.backoff_s(1), 0.0);
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff_s: 0.5,
            multiplier: 2.0,
        };
        assert_eq!(p.backoff_s(1), 0.0);
        assert_eq!(p.backoff_s(2), 0.5);
        assert_eq!(p.backoff_s(3), 1.0);
        assert_eq!(p.backoff_s(4), 2.0);
        assert!(p.should_retry(1));
        assert!(p.should_retry(3));
        assert!(!p.should_retry(4));
    }

    #[test]
    fn with_attempts_clamps_to_one() {
        assert_eq!(RetryPolicy::with_attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::with_attempts(5).max_attempts, 5);
    }
}
