//! Dataset sharding: one logical namespace spread over N independent
//! backends, optionally replicated.
//!
//! A [`ShardRouter`] owns a fixed set of shard backends (typically one
//! [`crate::DirBackend`] or [`crate::PoolDirBackend`] per shard
//! directory) and routes every file to a *primary* shard by a stable
//! hash of its name. Batches fan out per shard — each shard services
//! its slice concurrently — and results are merged back in submission
//! order, so callers cannot tell a sharded store from a flat one
//! except by throughput.
//!
//! With replication factor R ≥ 2 ([`ShardRouter::replicated`]) each
//! file also lives on the R−1 successor shards (chained declustering:
//! replica i sits at `(primary + i) mod N`, distinct while R ≤ N).
//! Writes fan out to every replica; reads try replicas in placement
//! order and fall through on error, so losing any single shard loses
//! nothing. Every masked read bumps the read-repair counter and the
//! first mask per file triggers an inline write-back of the healthy
//! copy onto the failed replicas. Without replication a lost shard
//! behaves exactly like losing the files it owns: reads and `len`
//! return [`PfsError::NotFound`], and `list` simply omits them.
//!
//! [`ShardRouter::with_hedge`] adds a latency hedge to read batches:
//! if no per-shard slice completes within the threshold, unfinished
//! slices are re-submitted to their next replica and the first
//! success wins. Tie-breaking is deterministic in *content* — both
//! sides hold byte-identical replicas, and a hedge result only
//! replaces waiting on the primary when it is fully successful — so
//! differential suites stay byte-identical; only timing-dependent
//! counters (hedged batches) vary.

use crate::backend::{ReadRequest, StorageBackend};
use crate::PfsError;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// One shard's slice of a batch: the submission slots it owns, the
/// requests, and the shard servicing it.
struct Slice {
    slots: Vec<usize>,
    reqs: Vec<ReadRequest>,
    shard: usize,
}

/// One shard's batch results, aligned with its slice's requests.
type SliceResults = Vec<Result<Vec<u8>, PfsError>>;

/// Routes a flat file namespace over `N` shard backends by a stable
/// name hash, fanning read batches out per shard.
pub struct ShardRouter {
    shards: Vec<Box<dyn StorageBackend>>,
    replicas: usize,
    hedge: Option<Duration>,
    read_repairs: AtomicU64,
    writebacks: AtomicU64,
    hedged_batches: AtomicU64,
    /// Files already written back this session, so one degraded file
    /// costs one repair, not one per masked read.
    repaired: Mutex<HashSet<String>>,
}

impl ShardRouter {
    /// Build an unreplicated router over the given shard backends
    /// (at least one).
    pub fn new(shards: Vec<Box<dyn StorageBackend>>) -> Result<Self, PfsError> {
        ShardRouter::replicated(shards, 1)
    }

    /// Build a router keeping `replicas` copies of every file on
    /// distinct shards. Requires `1 <= replicas <= shards.len()`.
    pub fn replicated(
        shards: Vec<Box<dyn StorageBackend>>,
        replicas: usize,
    ) -> Result<Self, PfsError> {
        if shards.is_empty() {
            return Err(PfsError::Io(std::io::Error::other(
                "shard router needs at least one shard",
            )));
        }
        if replicas == 0 || replicas > shards.len() {
            return Err(PfsError::Io(std::io::Error::other(format!(
                "replication factor {replicas} must be in 1..={} (shard count)",
                shards.len()
            ))));
        }
        Ok(ShardRouter {
            shards,
            replicas,
            hedge: None,
            read_repairs: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            hedged_batches: AtomicU64::new(0),
            repaired: Mutex::new(HashSet::new()),
        })
    }

    /// Enable hedged read batches: a per-shard slice still unfinished
    /// after `threshold_s` seconds is re-submitted to the next
    /// replica. No-op while `replicas == 1` (there is nowhere to
    /// hedge to).
    pub fn with_hedge(mut self, threshold_s: f64) -> Self {
        self.hedge = Some(Duration::from_secs_f64(threshold_s.max(0.0)));
        self
    }

    /// Which shard holds the primary copy of `name`. Deterministic
    /// and stable across runs and platforms (FNV-1a), so a dataset
    /// written sharded is always read back from the same layout.
    pub fn shard_for(&self, name: &str) -> usize {
        (stable_name_hash(name) % self.shards.len() as u64) as usize
    }

    /// Which shard holds replica `k` of `name` (k = 0 is the
    /// primary). Chained declustering: successive replicas on
    /// successive shards, distinct while `replicas <= shards`.
    pub fn replica_shard_for(&self, name: &str, k: usize) -> usize {
        (self.shard_for(name) + (k % self.replicas)) % self.shards.len()
    }

    /// The configured replication factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Borrow one shard backend (for per-shard inspection in tests
    /// and stats).
    pub fn shard(&self, i: usize) -> &dyn StorageBackend {
        self.shards[i].as_ref()
    }

    /// Files restored onto a failed replica by read-repair so far.
    pub fn writeback_count(&self) -> u64 {
        self.writebacks.load(Ordering::Relaxed)
    }

    /// Read batches that triggered the latency hedge. Timing
    /// dependent: advisory for stats, never pinned by tests.
    pub fn hedged_batch_count(&self) -> u64 {
        self.hedged_batches.load(Ordering::Relaxed)
    }

    /// Write back the healthy copy of `name` (read from shard
    /// `healthy`) onto the `failed` shards — once per file, best
    /// effort: a write-back that fails leaves the read fall-through
    /// to keep masking.
    fn write_back(&self, name: &str, healthy: usize, failed: &[usize]) {
        if failed.is_empty() || !self.repaired.lock().insert(name.to_string()) {
            return;
        }
        let src = &self.shards[healthy];
        let Ok(len) = src.len(name) else { return };
        let Ok(bytes) = src.read(name, 0, len) else {
            return;
        };
        for &s in failed {
            let dst = &self.shards[s];
            if dst.create(name).is_ok()
                && dst.append(name, &bytes).is_ok()
                && dst.sync(name).is_ok()
            {
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Fan a set of per-shard slices out on scoped threads, one per
    /// slice, optionally hedging stragglers onto the next replica.
    /// Returns per-slice results, aligned with `slices`.
    fn fan_out(&self, slices: &[Slice], hedge: bool) -> Vec<SliceResults> {
        let n = self.shards.len();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, bool, SliceResults)>();
            for (i, slice) in slices.iter().enumerate() {
                let tx = tx.clone();
                let shard = &self.shards[slice.shard];
                let reqs = &slice.reqs;
                scope.spawn(move || {
                    let _ = tx.send((i, false, shard.read_batch(reqs)));
                });
            }
            let mut done: Vec<Option<SliceResults>> = (0..slices.len()).map(|_| None).collect();
            let mut undone = slices.len();
            let mut hedged = false;
            while undone > 0 {
                let msg = match self.hedge {
                    Some(t) if hedge && !hedged => match rx.recv_timeout(t) {
                        Ok(m) => m,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            hedged = true;
                            self.hedged_batches.fetch_add(1, Ordering::Relaxed);
                            for (i, slice) in slices.iter().enumerate() {
                                if done[i].is_some() {
                                    continue;
                                }
                                let tx = tx.clone();
                                let shard = &self.shards[(slice.shard + 1) % n];
                                let reqs = &slice.reqs;
                                scope.spawn(move || {
                                    let _ = tx.send((i, true, shard.read_batch(reqs)));
                                });
                            }
                            continue;
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    },
                    _ => match rx.recv() {
                        Ok(m) => m,
                        Err(_) => break,
                    },
                };
                let (i, is_hedge, results) = msg;
                if done[i].is_some() {
                    continue;
                }
                // A hedge result only settles the slice when it is
                // fully successful; otherwise keep waiting for the
                // primary so error identity (and the replica
                // fall-through it feeds) stays deterministic.
                if !is_hedge || results.iter().all(|r| r.is_ok()) {
                    done[i] = Some(results);
                    undone -= 1;
                }
            }
            done.into_iter()
                .map(|res| res.expect("every slice resolved"))
                .collect()
        })
    }

    fn owner(&self, name: &str) -> &dyn StorageBackend {
        self.shards[self.shard_for(name)].as_ref()
    }
}

/// FNV-1a over the file name: zero-dep, platform-stable, and
/// independent of the fault-injection hash so fault schedules and
/// shard layout never correlate.
pub fn stable_name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl StorageBackend for ShardRouter {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        for k in 0..self.replicas {
            self.shards[self.replica_shard_for(name, k)].create(name)?;
        }
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        let offset = self.owner(name).append(name, data)?;
        for k in 1..self.replicas {
            self.shards[self.replica_shard_for(name, k)].append(name, data)?;
        }
        Ok(offset)
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        let mut first_err = None;
        let mut failed = Vec::new();
        for k in 0..self.replicas {
            let s = self.replica_shard_for(name, k);
            match self.shards[s].read(name, offset, len) {
                Ok(buf) => {
                    if k > 0 {
                        self.read_repairs.fetch_add(1, Ordering::Relaxed);
                        self.write_back(name, s, &failed);
                    }
                    return Ok(buf);
                }
                Err(e) => {
                    failed.push(s);
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        Err(first_err.expect("replicas >= 1"))
    }

    fn read_batch(&self, requests: &[ReadRequest]) -> Vec<Result<Vec<u8>, PfsError>> {
        let mut out: Vec<Option<Result<Vec<u8>, PfsError>>> =
            (0..requests.len()).map(|_| None).collect();
        // Replica rounds: round k routes the still-failing slots to
        // their k-th replica. Round 0 is the whole batch on primaries
        // (optionally hedged); later rounds mask errors.
        let mut pending: Vec<usize> = (0..requests.len()).collect();
        let mut repair_jobs: Vec<(String, usize, Vec<usize>)> = Vec::new();
        for k in 0..self.replicas {
            if pending.is_empty() {
                break;
            }
            // Partition this round's slots by serving shard.
            let mut per_shard: Vec<(Vec<usize>, Vec<ReadRequest>)> =
                (0..self.shards.len()).map(|_| Default::default()).collect();
            for &slot in &pending {
                let s = self.replica_shard_for(&requests[slot].file, k);
                per_shard[s].0.push(slot);
                per_shard[s].1.push(requests[slot].clone());
            }
            let slices: Vec<Slice> = per_shard
                .into_iter()
                .enumerate()
                .filter(|(_, (slots, _))| !slots.is_empty())
                .map(|(shard, (slots, reqs))| Slice { slots, reqs, shard })
                .collect();
            let hedge = k == 0 && self.replicas > 1;
            let mut still = Vec::new();
            let fanned = self.fan_out(&slices, hedge);
            for (slice, results) in slices.iter().zip(fanned) {
                debug_assert_eq!(slice.slots.len(), results.len());
                for (&slot, res) in slice.slots.iter().zip(results) {
                    match res {
                        Ok(buf) => {
                            if k > 0 {
                                // Round k only carries slots that
                                // failed on earlier replicas, so
                                // this read is masked.
                                self.read_repairs.fetch_add(1, Ordering::Relaxed);
                                let name = &requests[slot].file;
                                let healthy = self.replica_shard_for(name, k);
                                let failed: Vec<usize> =
                                    (0..k).map(|j| self.replica_shard_for(name, j)).collect();
                                repair_jobs.push((name.clone(), healthy, failed));
                            }
                            out[slot] = Some(Ok(buf));
                        }
                        Err(e) => {
                            if k + 1 < self.replicas {
                                still.push(slot);
                            }
                            // Keep the first (primary) error for
                            // identity with the unreplicated router.
                            if out[slot].is_none() {
                                out[slot] = Some(Err(e));
                            }
                        }
                    }
                }
            }
            still.sort_unstable();
            pending = still;
        }
        for (name, healthy, failed) in repair_jobs {
            self.write_back(&name, healthy, &failed);
        }
        out.into_iter()
            .map(|o| o.expect("every request routed to a shard"))
            .collect()
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        let mut first_err = None;
        for k in 0..self.replicas {
            match self.shards[self.replica_shard_for(name, k)].len(name) {
                Ok(n) => return Ok(n),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        Err(first_err.expect("replicas >= 1"))
    }

    fn sync(&self, name: &str) -> Result<(), PfsError> {
        for k in 0..self.replicas {
            self.shards[self.replica_shard_for(name, k)].sync(name)?;
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), PfsError> {
        let mut removed = false;
        let mut hard_err = None;
        for k in 0..self.replicas {
            match self.shards[self.replica_shard_for(name, k)].remove(name) {
                Ok(()) => removed = true,
                Err(PfsError::NotFound(_)) => {}
                Err(e) => hard_err = hard_err.or(Some(e)),
            }
        }
        match (hard_err, removed) {
            (Some(e), _) => Err(e),
            (None, true) => Ok(()),
            (None, false) => Err(PfsError::NotFound(name.to_string())),
        }
    }

    fn exists(&self, name: &str) -> bool {
        (0..self.replicas).any(|k| self.shards[self.replica_shard_for(name, k)].exists(name))
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shards.iter().flat_map(|s| s.list()).collect();
        names.sort();
        names.dedup();
        names
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, name: &str) -> usize {
        self.shard_for(name)
    }

    fn replica_count(&self) -> usize {
        self.replicas
    }

    fn replica_shard_of(&self, name: &str, replica: usize) -> usize {
        self.replica_shard_for(name, replica)
    }

    fn read_replica(
        &self,
        name: &str,
        replica: usize,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, PfsError> {
        self.shards[self.replica_shard_for(name, replica)].read(name, offset, len)
    }

    fn len_replica(&self, name: &str, replica: usize) -> Result<u64, PfsError> {
        self.shards[self.replica_shard_for(name, replica)].len(name)
    }

    fn read_repair_count(&self) -> u64 {
        self.read_repairs.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultBackend, FaultPlan};
    use crate::mem::MemBackend;

    fn router(n: usize) -> ShardRouter {
        ShardRouter::new((0..n).map(|_| Box::new(MemBackend::new()) as _).collect()).unwrap()
    }

    fn replicated(n: usize, r: usize) -> ShardRouter {
        ShardRouter::replicated(
            (0..n).map(|_| Box::new(MemBackend::new()) as _).collect(),
            r,
        )
        .unwrap()
    }

    /// A router over `n` mem shards where shard `dead` returns
    /// NotFound for every read-side op (writes still land).
    fn router_with_dead_shard(n: usize, r: usize, dead: usize) -> ShardRouter {
        let mut all = FaultPlan::none();
        all.lost_files.push(String::new()); // matches every name
        let shards: Vec<Box<dyn StorageBackend>> = (0..n)
            .map(|s| {
                if s == dead {
                    Box::new(FaultBackend::new(MemBackend::new(), all.clone())) as _
                } else {
                    Box::new(MemBackend::new()) as _
                }
            })
            .collect();
        ShardRouter::replicated(shards, r).unwrap()
    }

    #[test]
    fn routes_every_file_to_exactly_one_shard() {
        let r = router(4);
        for i in 0..64 {
            let name = format!("ds/var/bin{i:04}.dat");
            r.append(&name, &[i as u8; 16]).unwrap();
            let owner = r.shard_for(&name);
            assert_eq!(r.shard_of(&name), owner);
            // Exactly the owner holds the bytes.
            for s in 0..4 {
                assert_eq!(r.shard(s).exists(&name), s == owner);
            }
            assert_eq!(r.read(&name, 0, 16).unwrap(), vec![i as u8; 16]);
        }
        assert_eq!(r.shard_count(), 4);
        assert_eq!(r.list().len(), 64);
        // All shards got some share (64 files over 4 shards).
        for s in 0..4 {
            assert!(!r.shard(s).list().is_empty(), "shard {s} owns nothing");
        }
    }

    #[test]
    fn batch_merges_in_submission_order() {
        let r = router(3);
        for i in 0..12 {
            r.append(&format!("f{i}"), &[i as u8; 32]).unwrap();
        }
        let reqs: Vec<ReadRequest> = (0..12)
            .rev()
            .map(|i| ReadRequest::new(format!("f{i}"), 4, 8))
            .collect();
        let results = r.read_batch(&reqs);
        for (req, res) in reqs.iter().zip(&results) {
            let i: u8 = req.file[1..].parse().unwrap();
            assert_eq!(res.as_ref().unwrap(), &vec![i; 8]);
        }
    }

    #[test]
    fn lost_shard_degrades_like_lost_files() {
        use crate::fault::{FaultBackend, FaultPlan};
        // Shard 1 of 2 "dies": every file it owns is lost.
        let mut dead = FaultPlan::none();
        dead.lost_files.push("".to_string()); // matches every name
        let shards: Vec<Box<dyn StorageBackend>> = vec![
            Box::new(MemBackend::new()),
            Box::new(FaultBackend::new(MemBackend::new(), dead)),
        ];
        let r = ShardRouter::new(shards).unwrap();
        let mut live = 0;
        let mut lost = 0;
        for i in 0..32 {
            let name = format!("g{i}");
            let on_dead = r.shard_for(&name) == 1;
            // Writes to the dead shard still land (loss is a read-side
            // fault here), but every read-side op sees NotFound.
            r.append(&name, &[1, 2, 3, 4]).unwrap();
            if on_dead {
                lost += 1;
                assert!(matches!(r.read(&name, 0, 4), Err(PfsError::NotFound(_))));
                assert!(matches!(r.len(&name), Err(PfsError::NotFound(_))));
                assert!(!r.exists(&name));
            } else {
                live += 1;
                assert_eq!(r.read(&name, 0, 4).unwrap(), vec![1, 2, 3, 4]);
            }
        }
        assert!(live > 0 && lost > 0);
        assert_eq!(r.list().len(), live);
        // Batches keep per-request identity: lost-shard slots fail,
        // live slots return bytes.
        let reqs: Vec<ReadRequest> = (0..32)
            .map(|i| ReadRequest::new(format!("g{i}"), 0, 4))
            .collect();
        for (req, res) in reqs.iter().zip(r.read_batch(&reqs)) {
            if r.shard_for(&req.file) == 1 {
                assert!(matches!(res, Err(PfsError::NotFound(_))));
            } else {
                assert_eq!(res.unwrap(), vec![1, 2, 3, 4]);
            }
        }
        assert_eq!(r.read_repair_count(), 0, "nothing to fall through to");
    }

    #[test]
    fn empty_router_rejected() {
        assert!(ShardRouter::new(Vec::new()).is_err());
    }

    #[test]
    fn bad_replication_factors_rejected() {
        let shards = |n: usize| -> Vec<Box<dyn StorageBackend>> {
            (0..n).map(|_| Box::new(MemBackend::new()) as _).collect()
        };
        assert!(ShardRouter::replicated(shards(2), 0).is_err());
        assert!(ShardRouter::replicated(shards(2), 3).is_err());
        assert!(ShardRouter::replicated(shards(2), 2).is_ok());
    }

    #[test]
    fn replicated_writes_fan_out_to_distinct_shards() {
        let r = replicated(3, 2);
        for i in 0..24 {
            let name = format!("f{i}");
            r.append(&name, &[i as u8; 8]).unwrap();
            r.sync(&name).unwrap();
            let homes: Vec<usize> = (0..2).map(|k| r.replica_shard_for(&name, k)).collect();
            assert_ne!(homes[0], homes[1], "replicas must sit on distinct shards");
            for s in 0..3 {
                let holds = r.shard(s).exists(&name);
                assert_eq!(holds, homes.contains(&s), "shard {s} for {name}");
                if holds {
                    assert_eq!(r.shard(s).read(&name, 0, 8).unwrap(), vec![i as u8; 8]);
                }
            }
        }
        // The logical namespace counts each file once.
        assert_eq!(r.list().len(), 24);
        assert_eq!(r.replica_count(), 2);
    }

    #[test]
    fn reads_fall_through_to_replica_and_write_back() {
        // Shard 0 dead on the read side; every file whose primary is
        // shard 0 must still read fine via its replica on shard 1.
        let r = router_with_dead_shard(2, 2, 0);
        let mut masked = 0u64;
        for i in 0..32 {
            let name = format!("f{i}");
            r.append(&name, &[i as u8; 16]).unwrap();
        }
        for i in 0..32 {
            let name = format!("f{i}");
            assert_eq!(r.read(&name, 0, 16).unwrap(), vec![i as u8; 16]);
            assert_eq!(r.len(&name).unwrap(), 16);
            assert!(r.exists(&name));
            if r.shard_for(&name) == 0 {
                masked += 1;
            }
        }
        assert!(masked > 0, "no file landed on the dead primary");
        assert_eq!(
            r.read_repair_count(),
            masked,
            "one masked read per dead-primary file"
        );
        // Write-back ran once per degraded file: the dead shard's
        // *store* (below the fault layer) received the healthy copy.
        assert_eq!(r.writeback_count(), masked);

        // Re-reading keeps masking (the fault layer still denies) and
        // keeps counting, but never re-repairs.
        for i in 0..32 {
            let name = format!("f{i}");
            r.read(&name, 0, 16).unwrap();
        }
        assert_eq!(r.read_repair_count(), 2 * masked);
        assert_eq!(r.writeback_count(), masked, "write-back is once per file");
    }

    #[test]
    fn batch_falls_through_with_exact_accounting() {
        let r = router_with_dead_shard(3, 2, 1);
        for i in 0..48 {
            r.append(&format!("f{i}"), &[i as u8; 32]).unwrap();
        }
        let reqs: Vec<ReadRequest> = (0..48)
            .map(|i| ReadRequest::new(format!("f{i}"), 8, 16))
            .collect();
        let masked = reqs.iter().filter(|q| r.shard_for(&q.file) == 1).count() as u64;
        assert!(masked > 0);
        let results = r.read_batch(&reqs);
        for (req, res) in reqs.iter().zip(&results) {
            let i: u8 = req.file[1..].parse().unwrap();
            assert_eq!(res.as_ref().unwrap(), &vec![i; 16], "slot for {}", req.file);
        }
        assert_eq!(r.read_repair_count(), masked);
    }

    #[test]
    fn double_fault_returns_primary_error() {
        // Both replicas dead: the error identity matches what the
        // unreplicated router reports for a lost file.
        let mut all = FaultPlan::none();
        all.lost_files.push(String::new());
        let shards: Vec<Box<dyn StorageBackend>> = (0..2)
            .map(|_| Box::new(FaultBackend::new(MemBackend::new(), all.clone())) as _)
            .collect();
        let r = ShardRouter::replicated(shards, 2).unwrap();
        r.append("f", &[1, 2, 3]).unwrap();
        assert!(matches!(r.read("f", 0, 3), Err(PfsError::NotFound(_))));
        let res = r.read_batch(&[ReadRequest::new("f", 0, 3)]);
        assert!(matches!(&res[0], Err(PfsError::NotFound(_))));
        assert_eq!(r.read_repair_count(), 0);
    }

    #[test]
    fn hedged_replicated_batch_is_byte_identical() {
        let plain = replicated(2, 2);
        for i in 0..32 {
            plain.append(&format!("f{i}"), &[i as u8; 64]).unwrap();
        }
        let reqs: Vec<ReadRequest> = (0..96)
            .map(|i| ReadRequest::new(format!("f{}", i % 32), (i / 32) * 16, 16))
            .collect();
        let want = plain.read_batch(&reqs);

        // Same contents, zero hedge threshold: the hedge fires
        // aggressively and races the primary; bytes must not change.
        let hedged = replicated(2, 2).with_hedge(0.0);
        for i in 0..32 {
            hedged.append(&format!("f{i}"), &[i as u8; 64]).unwrap();
        }
        for _ in 0..5 {
            let got = hedged.read_batch(&reqs);
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
            }
        }
        assert!(
            hedged.hedged_batch_count() >= 1,
            "zero threshold never hedged"
        );
    }

    #[test]
    fn remove_deletes_every_replica() {
        let r = replicated(3, 2);
        r.append("f", &[1, 2]).unwrap();
        r.remove("f").unwrap();
        assert!(!r.exists("f"));
        for s in 0..3 {
            assert!(!r.shard(s).exists("f"));
        }
        assert!(matches!(r.remove("f"), Err(PfsError::NotFound(_))));
    }
}
