//! Dataset sharding: one logical namespace spread over N independent
//! backends.
//!
//! A [`ShardRouter`] owns a fixed set of shard backends (typically one
//! [`crate::DirBackend`] or [`crate::PoolDirBackend`] per shard
//! directory) and routes every file to exactly one shard by a stable
//! hash of its name. Batches fan out per shard — each shard services
//! its slice concurrently — and results are merged back in submission
//! order, so callers cannot tell a sharded store from a flat one
//! except by throughput. A lost shard behaves exactly like losing the
//! files it owns: reads and `len` return [`PfsError::NotFound`], and
//! `list` simply omits them, which is precisely how a lost file
//! degrades today.

use crate::backend::{ReadRequest, StorageBackend};
use crate::PfsError;

/// One shard's slice of a batch: the submission slots it owns plus the
/// per-slot results, merged back in submission order.
type ShardSlice = (Vec<usize>, Vec<Result<Vec<u8>, PfsError>>);

/// Routes a flat file namespace over `N` shard backends by a stable
/// name hash, fanning read batches out per shard.
pub struct ShardRouter {
    shards: Vec<Box<dyn StorageBackend>>,
}

impl ShardRouter {
    /// Build a router over the given shard backends (at least one).
    pub fn new(shards: Vec<Box<dyn StorageBackend>>) -> Result<Self, PfsError> {
        if shards.is_empty() {
            return Err(PfsError::Io(std::io::Error::other(
                "shard router needs at least one shard",
            )));
        }
        Ok(ShardRouter { shards })
    }

    /// Which shard owns `name`. Deterministic and stable across runs
    /// and platforms (FNV-1a), so a dataset written sharded is always
    /// read back from the same layout.
    pub fn shard_for(&self, name: &str) -> usize {
        (stable_name_hash(name) % self.shards.len() as u64) as usize
    }

    /// Borrow one shard backend (for per-shard inspection in tests
    /// and stats).
    pub fn shard(&self, i: usize) -> &dyn StorageBackend {
        self.shards[i].as_ref()
    }

    fn owner(&self, name: &str) -> &dyn StorageBackend {
        self.shards[self.shard_for(name)].as_ref()
    }
}

/// FNV-1a over the file name: zero-dep, platform-stable, and
/// independent of the fault-injection hash so fault schedules and
/// shard layout never correlate.
pub fn stable_name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl StorageBackend for ShardRouter {
    fn create(&self, name: &str) -> Result<(), PfsError> {
        self.owner(name).create(name)
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<u64, PfsError> {
        self.owner(name).append(name, data)
    }

    fn read(&self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        self.owner(name).read(name, offset, len)
    }

    fn read_batch(&self, requests: &[ReadRequest]) -> Vec<Result<Vec<u8>, PfsError>> {
        // Partition the batch by owning shard, remembering each
        // request's submission slot.
        let mut per_shard: Vec<(Vec<usize>, Vec<ReadRequest>)> =
            (0..self.shards.len()).map(|_| Default::default()).collect();
        for (slot, req) in requests.iter().enumerate() {
            let s = self.shard_for(&req.file);
            per_shard[s].0.push(slot);
            per_shard[s].1.push(req.clone());
        }
        let mut out: Vec<Option<Result<Vec<u8>, PfsError>>> =
            (0..requests.len()).map(|_| None).collect();
        // Fan out: one thread per shard with work, each draining its
        // slice through that shard's own (possibly concurrent)
        // read_batch. Results merge back by submission slot.
        let mut merged: Vec<ShardSlice> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .zip(self.shards.iter())
                .filter(|((slots, _), _)| !slots.is_empty())
                .map(|((slots, reqs), shard)| scope.spawn(move || (slots, shard.read_batch(&reqs))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard read thread panicked"))
                .collect()
        });
        for (slots, results) in merged.drain(..) {
            debug_assert_eq!(slots.len(), results.len());
            for (slot, res) in slots.into_iter().zip(results) {
                out[slot] = Some(res);
            }
        }
        out.into_iter()
            .map(|o| o.expect("every request routed to a shard"))
            .collect()
    }

    fn len(&self, name: &str) -> Result<u64, PfsError> {
        self.owner(name).len(name)
    }

    fn sync(&self, name: &str) -> Result<(), PfsError> {
        self.owner(name).sync(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.owner(name).exists(name)
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shards.iter().flat_map(|s| s.list()).collect();
        names.sort();
        names
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, name: &str) -> usize {
        self.shard_for(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBackend;

    fn router(n: usize) -> ShardRouter {
        ShardRouter::new((0..n).map(|_| Box::new(MemBackend::new()) as _).collect()).unwrap()
    }

    #[test]
    fn routes_every_file_to_exactly_one_shard() {
        let r = router(4);
        for i in 0..64 {
            let name = format!("ds/var/bin{i:04}.dat");
            r.append(&name, &[i as u8; 16]).unwrap();
            let owner = r.shard_for(&name);
            assert_eq!(r.shard_of(&name), owner);
            // Exactly the owner holds the bytes.
            for s in 0..4 {
                assert_eq!(r.shard(s).exists(&name), s == owner);
            }
            assert_eq!(r.read(&name, 0, 16).unwrap(), vec![i as u8; 16]);
        }
        assert_eq!(r.shard_count(), 4);
        assert_eq!(r.list().len(), 64);
        // All shards got some share (64 files over 4 shards).
        for s in 0..4 {
            assert!(!r.shard(s).list().is_empty(), "shard {s} owns nothing");
        }
    }

    #[test]
    fn batch_merges_in_submission_order() {
        let r = router(3);
        for i in 0..12 {
            r.append(&format!("f{i}"), &[i as u8; 32]).unwrap();
        }
        let reqs: Vec<ReadRequest> = (0..12)
            .rev()
            .map(|i| ReadRequest::new(format!("f{i}"), 4, 8))
            .collect();
        let results = r.read_batch(&reqs);
        for (req, res) in reqs.iter().zip(&results) {
            let i: u8 = req.file[1..].parse().unwrap();
            assert_eq!(res.as_ref().unwrap(), &vec![i; 8]);
        }
    }

    #[test]
    fn lost_shard_degrades_like_lost_files() {
        use crate::fault::{FaultBackend, FaultPlan};
        // Shard 1 of 2 "dies": every file it owns is lost.
        let mut dead = FaultPlan::none();
        dead.lost_files.push("".to_string()); // matches every name
        let shards: Vec<Box<dyn StorageBackend>> = vec![
            Box::new(MemBackend::new()),
            Box::new(FaultBackend::new(MemBackend::new(), dead)),
        ];
        let r = ShardRouter::new(shards).unwrap();
        let mut live = 0;
        let mut lost = 0;
        for i in 0..32 {
            let name = format!("g{i}");
            let on_dead = r.shard_for(&name) == 1;
            // Writes to the dead shard still land (loss is a read-side
            // fault here), but every read-side op sees NotFound.
            r.append(&name, &[1, 2, 3, 4]).unwrap();
            if on_dead {
                lost += 1;
                assert!(matches!(r.read(&name, 0, 4), Err(PfsError::NotFound(_))));
                assert!(matches!(r.len(&name), Err(PfsError::NotFound(_))));
                assert!(!r.exists(&name));
            } else {
                live += 1;
                assert_eq!(r.read(&name, 0, 4).unwrap(), vec![1, 2, 3, 4]);
            }
        }
        assert!(live > 0 && lost > 0);
        assert_eq!(r.list().len(), live);
        // Batches keep per-request identity: lost-shard slots fail,
        // live slots return bytes.
        let reqs: Vec<ReadRequest> = (0..32)
            .map(|i| ReadRequest::new(format!("g{i}"), 0, 4))
            .collect();
        for (req, res) in reqs.iter().zip(r.read_batch(&reqs)) {
            if r.shard_for(&req.file) == 1 {
                assert!(matches!(res, Err(PfsError::NotFound(_))));
            } else {
                assert_eq!(res.unwrap(), vec![1, 2, 3, 4]);
            }
        }
    }

    #[test]
    fn empty_router_rejected() {
        assert!(ShardRouter::new(Vec::new()).is_err());
    }
}
