//! Discrete-event replay of I/O traces against the cost model.
//!
//! Every rank's recorded [`ReadOp`]s are replayed in order. A read is
//! split at stripe boundaries into per-OST segments; all segments of
//! one op are issued concurrently (Lustre clients fetch stripes in
//! parallel), each OST serves its queue FIFO, and a segment pays a
//! seek when it does not continue exactly where that OST's head left
//! off. The rank's clock advances to the completion of the slowest
//! segment, which yields both single-stream behaviour (seeks + bytes /
//! aggregate bandwidth) and the contention plateau the paper observes
//! when many processes share a fixed set of OSTs (Fig. 7).

use crate::backend::ReadOp;
use crate::cost::CostModel;
use std::collections::HashSet;

/// Result of simulating one parallel I/O phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated I/O seconds per rank (completion of its last op).
    pub per_rank_seconds: Vec<f64>,
    /// Total bytes transferred across all ranks.
    pub total_bytes: u64,
    /// Number of seeks paid across all OSTs.
    pub total_seeks: u64,
    /// Number of file opens charged.
    pub total_opens: u64,
    /// Per-rank cost decomposition (same length as `per_rank_seconds`).
    pub per_rank: Vec<RankIoBreakdown>,
}

/// Where one rank's simulated I/O cost went.
///
/// `seek_s`/`open_s`/`transfer_s` are *device-service* seconds summed
/// over this rank's stripe segments. Because segments of one op are
/// served by many OSTs concurrently, their sum can exceed the rank's
/// wall-clock `seconds` (striping parallelism) or fall below it
/// (queueing behind other ranks) — the gap between the two is exactly
/// the parallelism-vs-contention signal the paper's Fig. 7 plots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankIoBreakdown {
    /// Wall-clock completion of this rank's last op (mirrors
    /// `per_rank_seconds`).
    pub seconds: f64,
    /// Bytes transferred for this rank.
    pub bytes: u64,
    /// Seeks charged to segments this rank issued.
    pub seeks: u64,
    /// File opens charged to this rank.
    pub opens: u64,
    /// Device seconds spent seeking for this rank's segments.
    pub seek_s: f64,
    /// Seconds spent opening files.
    pub open_s: f64,
    /// Device seconds spent transferring this rank's bytes.
    pub transfer_s: f64,
}

impl SimReport {
    /// Wall-clock of the I/O phase: the slowest rank.
    pub fn elapsed(&self) -> f64 {
        self.per_rank_seconds.iter().copied().fold(0.0, f64::max)
    }

    /// Mean per-rank I/O time.
    pub fn mean(&self) -> f64 {
        if self.per_rank_seconds.is_empty() {
            0.0
        } else {
            self.per_rank_seconds.iter().sum::<f64>() / self.per_rank_seconds.len() as f64
        }
    }

    /// Aggregate throughput in bytes/second over the phase.
    pub fn throughput(&self) -> f64 {
        let e = self.elapsed();
        if e > 0.0 {
            self.total_bytes as f64 / e
        } else {
            0.0
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
struct OstState {
    free_at: f64,
    last_file: u64,
    last_end: u64,
    touched: bool,
}

/// Replay `traces` (one op list per rank) against `model`.
pub fn simulate_reads(traces: &[Vec<ReadOp>], model: &CostModel) -> SimReport {
    let nranks = traces.len();
    let mut clocks = vec![0.0f64; nranks];
    let mut osts = vec![
        OstState {
            free_at: 0.0,
            last_file: 0,
            last_end: 0,
            touched: false
        };
        model.num_osts
    ];
    let mut opened: HashSet<(usize, u64)> = HashSet::new();

    let mut total_bytes = 0u64;
    let mut total_seeks = 0u64;
    let mut total_opens = 0u64;
    let mut per_rank = vec![RankIoBreakdown::default(); nranks];
    let window = model.client_parallelism.max(1);

    // Per-rank cursor state. Segments are the event granularity: the
    // global loop always serves the segment with the earliest issue
    // time, so concurrent ranks interleave correctly on the OSTs.
    struct Cursor {
        op_idx: usize,
        seg_off: u64,
        op_start: f64,
        op_completion: f64,
        inflight: std::collections::VecDeque<f64>,
    }
    let mut cursors: Vec<Cursor> = (0..nranks)
        .map(|_| Cursor {
            op_idx: 0,
            seg_off: 0,
            op_start: 0.0,
            op_completion: 0.0,
            inflight: std::collections::VecDeque::with_capacity(window),
        })
        .collect();

    // Advance a cursor past zero-length ops and op boundaries; charge
    // open costs at op start. Returns the issue time of the rank's
    // next segment, or None when the trace is exhausted.
    let prepare = |r: usize,
                   cur: &mut Cursor,
                   clocks: &mut [f64],
                   opened: &mut HashSet<(usize, u64)>,
                   total_opens: &mut u64,
                   per_rank: &mut [RankIoBreakdown]|
     -> Option<f64> {
        loop {
            let op = traces[r].get(cur.op_idx)?;
            if cur.seg_off == 0 {
                // Starting a new op: it begins when the previous op's
                // segments have all completed. Cache-served extents
                // never reach the disks — free, like zero-length ops.
                if op.len == 0 || op.cached {
                    cur.op_idx += 1;
                    continue;
                }
                let mut start = clocks[r];
                let fh = CostModel::file_hash(&op.file);
                if opened.insert((r, fh)) {
                    start += model.open_s;
                    *total_opens += 1;
                    per_rank[r].opens += 1;
                    per_rank[r].open_s += model.open_s;
                }
                cur.op_start = start;
                cur.op_completion = start;
                cur.seg_off = op.offset;
                cur.inflight.clear();
            }
            if cur.seg_off >= op.offset + op.len {
                // Op finished: its completion gates the next op.
                clocks[r] = cur.op_completion;
                cur.op_idx += 1;
                cur.seg_off = 0;
                continue;
            }
            let issue = if cur.inflight.len() >= window {
                cur.inflight.front().copied().unwrap().max(cur.op_start)
            } else {
                cur.op_start
            };
            return Some(issue);
        }
    };

    loop {
        // Pick the rank whose next segment issues earliest.
        let mut pick: Option<(usize, f64)> = None;
        for r in 0..nranks {
            let (head, tail) = cursors.split_at_mut(r);
            let _ = head;
            let cur = &mut tail[0];
            if let Some(issue) = prepare(
                r,
                cur,
                &mut clocks,
                &mut opened,
                &mut total_opens,
                &mut per_rank,
            ) {
                if pick.is_none_or(|(_, best)| issue < best) {
                    pick = Some((r, issue));
                }
            }
        }
        let Some((r, issue)) = pick else { break };
        let cur = &mut cursors[r];
        let op = &traces[r][cur.op_idx];
        let fh = CostModel::file_hash(&op.file);

        // Serve one stripe segment.
        let off = cur.seg_off;
        let end = op.offset + op.len;
        let stripe_end = (off / model.stripe_size + 1) * model.stripe_size;
        let seg_end = stripe_end.min(end);
        let seg_len = seg_end - off;
        let ost = model.ost_of(&op.file, off);
        let st = &mut osts[ost];

        // Physical position on the OST: it stores every `num_osts`-th
        // stripe of the file contiguously.
        let phys = (off / model.stripe_size / model.num_osts as u64) * model.stripe_size
            + off % model.stripe_size;

        let begin = st.free_at.max(issue);
        let sequential = st.touched && st.last_file == fh && st.last_end == phys;
        let transfer = seg_len as f64 / model.ost_bw;
        let mut cost = transfer;
        per_rank[r].transfer_s += transfer;
        if !sequential {
            cost += model.seek_s;
            total_seeks += 1;
            per_rank[r].seeks += 1;
            per_rank[r].seek_s += model.seek_s;
        }
        st.free_at = begin + cost;
        st.last_file = fh;
        st.last_end = phys + seg_len;
        st.touched = true;

        if cur.inflight.len() >= window {
            cur.inflight.pop_front();
        }
        cur.inflight.push_back(st.free_at);
        cur.op_completion = cur.op_completion.max(st.free_at);
        cur.seg_off = seg_end;
        total_bytes += seg_len;
        per_rank[r].bytes += seg_len;
    }

    for (b, &t) in per_rank.iter_mut().zip(clocks.iter()) {
        b.seconds = t;
    }
    SimReport {
        per_rank_seconds: clocks,
        total_bytes,
        total_seeks,
        total_opens,
        per_rank,
    }
}

/// Simulate a single rank's trace.
pub fn simulate_single(trace: &[ReadOp], model: &CostModel) -> f64 {
    simulate_reads(std::slice::from_ref(&trace.to_vec()), model).elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(file: &str, offset: u64, len: u64) -> ReadOp {
        ReadOp::new(file, offset, len)
    }

    fn model() -> CostModel {
        CostModel::lens_2012()
    }

    #[test]
    fn empty_trace() {
        let rep = simulate_reads(&[vec![]], &model());
        assert_eq!(rep.elapsed(), 0.0);
        assert_eq!(rep.total_bytes, 0);
    }

    #[test]
    fn single_scan_is_limited_by_client_parallelism() {
        let m = model();
        let size = 1u64 << 30; // 1 GiB
        let rep = simulate_reads(&[vec![op("big", 0, size)]], &m);
        // A single client streams at client_parallelism × OST bandwidth
        // (the paper's sequential scan: ~420 MB/s on Lens), far below
        // the aggregate.
        let ideal = size as f64 / (m.ost_bw * m.client_parallelism as f64);
        let t = rep.elapsed();
        assert!(t > ideal * 0.9, "t={t} vs single-client ideal={ideal}");
        assert!(t < ideal * 1.5 + 0.5, "t={t} too far above ideal={ideal}");
        assert!(
            t > size as f64 / m.aggregate_bw() * 2.0,
            "t={t} too close to aggregate"
        );
        assert_eq!(rep.total_seeks, m.num_osts as u64);
        assert_eq!(rep.total_opens, 1);
    }

    #[test]
    fn many_ranks_reach_aggregate_bandwidth() {
        // Enough concurrent clients saturate all OSTs.
        let m = model();
        let total = 1u64 << 30;
        let nranks = 16u64;
        let share = total / nranks;
        let traces: Vec<Vec<ReadOp>> = (0..nranks)
            .map(|r| vec![op(&format!("f{r}"), 0, share)])
            .collect();
        let t = simulate_reads(&traces, &m).elapsed();
        // Aggregate transfer plus the interleave-seek floor.
        let ideal = total as f64 / m.aggregate_bw();
        assert!(t < ideal * 4.0, "t={t} vs aggregate ideal={ideal}");
        // Far faster than a single client could go.
        let single = total as f64 / (m.ost_bw * m.client_parallelism as f64);
        assert!(t < single * 0.6, "t={t} vs single-client {single}");
    }

    #[test]
    fn scattered_reads_pay_seeks() {
        let m = model();
        // 100 random 4-KiB reads spread megabytes apart: seek-bound.
        let trace: Vec<ReadOp> = (0..100)
            .map(|i| op("f", i * 16 * (1 << 20), 4096))
            .collect();
        let t = simulate_reads(&[trace], &m).elapsed();
        assert!(t >= 100.0 * m.seek_s, "t={t}");
    }

    #[test]
    fn sequential_chunks_do_not_pay_seeks() {
        let m = model();
        // Contiguous 1 MiB reads stripe across OSTs; after each OST's
        // first touch, accesses continue where it left off.
        let trace: Vec<ReadOp> = (0..64).map(|i| op("f", i * (1 << 20), 1 << 20)).collect();
        let rep = simulate_reads(&[trace], &m);
        assert_eq!(rep.total_seeks, m.num_osts as u64);
    }

    #[test]
    fn contention_slows_shared_reads() {
        let m = model();
        let size = 256u64 << 20;
        let solo = simulate_reads(&[vec![op("f", 0, size)]], &m).elapsed();
        // Two ranks scanning the same extent: same OSTs serve twice the
        // bytes and interleaved positions also cost seeks.
        let duo = simulate_reads(&[vec![op("f", 0, size)], vec![op("f", 0, size)]], &m).elapsed();
        assert!(duo > solo * 1.6, "duo={duo} solo={solo}");
    }

    #[test]
    fn io_plateaus_with_more_ranks() {
        // Fixed total work divided over more ranks: elapsed I/O stops
        // improving once OSTs saturate — the Fig. 7 plateau.
        let m = model();
        let total = 1u64 << 30;
        let time_with = |nranks: u64| {
            let share = total / nranks;
            let traces: Vec<Vec<ReadOp>> = (0..nranks)
                .map(|r| vec![op(&format!("bin{r}"), 0, share)])
                .collect();
            simulate_reads(&traces, &m).elapsed()
        };
        let t8 = time_with(8);
        let t32 = time_with(32);
        let t128 = time_with(128);
        assert!(t32 <= t8 * 1.1, "t32={t32} t8={t8}");
        // Diminishing returns: 128 ranks gain little over 32.
        assert!(t128 > t32 * 0.5, "t128={t128} t32={t32}");
    }

    #[test]
    fn different_files_parallelize() {
        let m = model();
        let size = 64u64 << 20;
        // Two ranks on two different files mostly use disjoint OST
        // phases; way faster than double the single time.
        let solo = simulate_reads(&[vec![op("a", 0, size)]], &m).elapsed();
        let duo = simulate_reads(&[vec![op("a", 0, size)], vec![op("b", 0, size)]], &m).elapsed();
        assert!(duo < solo * 2.2, "duo={duo} solo={solo}");
    }

    #[test]
    fn cached_ops_are_free() {
        let m = model();
        let mut cached = op("f", 0, 256 << 20);
        cached.cached = true;
        let rep = simulate_reads(&[vec![cached]], &m);
        assert_eq!(rep.elapsed(), 0.0);
        assert_eq!(rep.total_bytes, 0);
        assert_eq!(rep.total_seeks, 0);
        assert_eq!(rep.total_opens, 0);
        // Mixed trace: only the uncached op is charged.
        let mut warm = op("f", 0, 1 << 20);
        warm.cached = true;
        let mixed = simulate_reads(&[vec![warm, op("f", 1 << 20, 1 << 20)]], &m);
        let cold_only = simulate_reads(&[vec![op("f", 1 << 20, 1 << 20)]], &m);
        assert_eq!(mixed.per_rank_seconds, cold_only.per_rank_seconds);
        assert_eq!(mixed.total_bytes, 1 << 20);
    }

    #[test]
    fn zero_len_ops_are_free() {
        let rep = simulate_reads(&[vec![op("f", 0, 0)]], &model());
        assert_eq!(rep.elapsed(), 0.0);
        assert_eq!(rep.total_opens, 0);
    }

    #[test]
    fn per_rank_breakdown_reconciles_with_totals() {
        let m = model();
        let traces = vec![
            vec![op("a", 0, 8 << 20), op("a", 32 << 20, 4 << 20)],
            vec![op("b", 0, 16 << 20)],
            vec![], // idle rank stays all-zero
        ];
        let rep = simulate_reads(&traces, &m);
        assert_eq!(rep.per_rank.len(), 3);
        assert_eq!(
            rep.per_rank.iter().map(|b| b.bytes).sum::<u64>(),
            rep.total_bytes
        );
        assert_eq!(
            rep.per_rank.iter().map(|b| b.seeks).sum::<u64>(),
            rep.total_seeks
        );
        assert_eq!(
            rep.per_rank.iter().map(|b| b.opens).sum::<u64>(),
            rep.total_opens
        );
        for (b, &t) in rep.per_rank.iter().zip(rep.per_rank_seconds.iter()) {
            assert_eq!(b.seconds, t);
            assert!((b.seek_s - b.seeks as f64 * m.seek_s).abs() < 1e-12);
            assert!((b.open_s - b.opens as f64 * m.open_s).abs() < 1e-12);
            assert!((b.transfer_s - b.bytes as f64 / m.ost_bw).abs() < 1e-9);
        }
        assert_eq!(rep.per_rank[2], RankIoBreakdown::default());
    }

    #[test]
    fn throughput_and_mean() {
        let m = model();
        let rep = simulate_reads(&[vec![op("f", 0, 1 << 20)], vec![op("g", 0, 1 << 20)]], &m);
        assert!(rep.throughput() > 0.0);
        assert!(rep.mean() <= rep.elapsed());
    }
}
