//! Property-based tests for the PFS simulator: causality, monotonicity
//! and conservation invariants that must hold for any trace — plus the
//! batched-read and shard-routing contracts that must hold for any
//! request list on any backend.

use std::sync::atomic::{AtomicUsize, Ordering};

use mloc_pfs::{
    simulate_reads, CostModel, DirBackend, FaultBackend, FaultPlan, MemBackend, PfsError,
    PoolDirBackend, ReadOp, ReadRequest, ShardRouter, StorageBackend,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn op_strategy() -> impl Strategy<Value = ReadOp> {
    (0u8..4, 0u64..(1 << 26), 1u64..(1 << 22))
        .prop_map(|(f, offset, len)| ReadOp::new(format!("f{f}"), offset, len))
}

fn trace_strategy() -> impl Strategy<Value = Vec<Vec<ReadOp>>> {
    proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..6), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulation_is_deterministic(traces in trace_strategy()) {
        let m = CostModel::lens_2012();
        let a = simulate_reads(&traces, &m);
        let b = simulate_reads(&traces, &m);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn conservation_of_bytes(traces in trace_strategy()) {
        let m = CostModel::lens_2012();
        let rep = simulate_reads(&traces, &m);
        let want: u64 = traces.iter().flatten().map(|o| o.len).sum();
        prop_assert_eq!(rep.total_bytes, want);
    }

    #[test]
    fn time_is_bounded_below_by_physics(traces in trace_strategy()) {
        // No rank can finish faster than its own bytes at full
        // aggregate bandwidth, and the phase cannot beat the total
        // bytes over aggregate bandwidth.
        let m = CostModel::lens_2012();
        let rep = simulate_reads(&traces, &m);
        for (r, trace) in traces.iter().enumerate() {
            let bytes: u64 = trace.iter().map(|o| o.len).sum();
            if bytes > 0 {
                let lower = bytes as f64 / m.aggregate_bw();
                prop_assert!(
                    rep.per_rank_seconds[r] >= lower,
                    "rank {} took {} < physical bound {}",
                    r, rep.per_rank_seconds[r], lower
                );
            }
        }
        let total: u64 = traces.iter().flatten().map(|o| o.len).sum();
        prop_assert!(rep.elapsed() >= total as f64 / m.aggregate_bw());
    }

    #[test]
    fn adding_work_never_speeds_up_the_phase(traces in trace_strategy(), extra in op_strategy()) {
        let m = CostModel::lens_2012();
        let before = simulate_reads(&traces, &m).elapsed();
        let mut more = traces.clone();
        more[0].push(extra);
        let after = simulate_reads(&more, &m).elapsed();
        prop_assert!(after + 1e-12 >= before, "after {after} < before {before}");
    }

    #[test]
    fn seeks_and_opens_are_sane(traces in trace_strategy()) {
        let m = CostModel::lens_2012();
        let rep = simulate_reads(&traces, &m);
        let nonempty_ops = traces.iter().flatten().filter(|o| o.len > 0).count() as u64;
        // At most one open per (rank, file) pair.
        let mut pairs = std::collections::HashSet::new();
        for (r, t) in traces.iter().enumerate() {
            for o in t.iter().filter(|o| o.len > 0) {
                pairs.insert((r, o.file.clone()));
            }
        }
        prop_assert!(rep.total_opens <= pairs.len() as u64);
        // Seeks are bounded by the number of stripe segments.
        let segments: u64 = traces
            .iter()
            .flatten()
            .map(|o| {
                if o.len == 0 {
                    0
                } else {
                    (o.offset + o.len).div_ceil(m.stripe_size) - o.offset / m.stripe_size
                }
            })
            .sum();
        prop_assert!(rep.total_seeks <= segments);
        prop_assert!(nonempty_ops == 0 || rep.total_seeks >= 1);
    }
}

// ---------------------------------------------------------------------
// Batched reads and shard routing
// ---------------------------------------------------------------------

static PROP_DIR_ID: AtomicUsize = AtomicUsize::new(0);

/// A throwaway directory for one proptest case, removed on drop.
struct TempRoot(std::path::PathBuf);

impl TempRoot {
    fn new() -> Self {
        let p = std::env::temp_dir().join(format!(
            "mloc-pfs-prop-{}-{}",
            std::process::id(),
            PROP_DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempRoot(p)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Arbitrary file contents over a small name pool (duplicates append).
fn file_set_strategy() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    proptest::collection::vec(
        (0u8..4, proptest::collection::vec(any::<u8>(), 1..160)),
        1..5,
    )
    .prop_map(|files| {
        files
            .into_iter()
            .map(|(i, bytes)| (format!("p{i}"), bytes))
            .collect()
    })
}

/// Arbitrary request lists: overlapping, duplicate, zero-length,
/// out-of-range offsets/lengths, and reads of files that don't exist.
fn request_list_strategy() -> impl Strategy<Value = Vec<ReadRequest>> {
    proptest::collection::vec(
        (0u8..6, 0u64..260, 0u64..260)
            .prop_map(|(f, offset, len)| ReadRequest::new(format!("p{f}"), offset, len)),
        0..24,
    )
}

/// Ok bytes must match exactly; errors must agree on identity (which
/// variant, which file) even when the payloads aren't comparable.
fn normalize(res: &Result<Vec<u8>, PfsError>) -> String {
    match res {
        Ok(bytes) => format!("ok:{bytes:?}"),
        Err(e) => format!("err:{e}"),
    }
}

/// Every backend world the suite guarantees batch/sequential parity
/// for, populated with the same files.
fn make_worlds(
    root: &TempRoot,
    files: &[(String, Vec<u8>)],
) -> Vec<(&'static str, Box<dyn StorageBackend>)> {
    let dir = root.0.join("d");
    let worlds: Vec<(&'static str, Box<dyn StorageBackend>)> = vec![
        ("mem", Box::new(MemBackend::new())),
        ("dir", Box::new(DirBackend::new(root.0.join("c")).unwrap())),
        (
            "dir-uncached",
            Box::new(DirBackend::uncached(root.0.join("u")).unwrap()),
        ),
        ("pool", Box::new(PoolDirBackend::new(&dir, 3).unwrap())),
        (
            "shard-mem",
            Box::new(
                ShardRouter::new((0..3).map(|_| Box::new(MemBackend::new()) as _).collect())
                    .unwrap(),
            ),
        ),
        (
            "shard-dir",
            Box::new(
                ShardRouter::new(
                    (0..2)
                        .map(|s| {
                            Box::new(DirBackend::new(root.0.join(format!("s{s}"))).unwrap()) as _
                        })
                        .collect(),
                )
                .unwrap(),
            ),
        ),
    ];
    for (_, be) in &worlds {
        for (name, bytes) in files {
            be.append(name, bytes).unwrap();
        }
    }
    worlds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `read_batch` must be observationally identical to a sequential
    /// loop of `read` on every backend, for any request list.
    #[test]
    fn read_batch_matches_sequential_loop(
        files in file_set_strategy(),
        reqs in request_list_strategy(),
    ) {
        let root = TempRoot::new();
        for (tag, be) in make_worlds(&root, &files) {
            let batch = be.read_batch(&reqs);
            prop_assert_eq!(batch.len(), reqs.len(), "{}: wrong batch arity", tag);
            for (i, (req, got)) in reqs.iter().zip(&batch).enumerate() {
                let want = be.read(&req.file, req.offset, req.len);
                prop_assert_eq!(
                    normalize(got),
                    normalize(&want),
                    "{}: slot {} ({:?}@{}+{}) diverged",
                    tag, i, &req.file, req.offset, req.len
                );
            }
        }
    }

    /// Shard routing round-trips every file to exactly one owner, and
    /// batches through the router preserve submission order.
    #[test]
    fn shard_routing_round_trips_every_file(
        names in proptest::collection::vec(
            proptest::collection::vec(0u8..26, 1..10)
                .prop_map(|cs| cs.into_iter().map(|c| (b'a' + c) as char).collect::<String>()),
            1..20,
        ),
        nshards in 1usize..5,
    ) {
        let router = ShardRouter::new(
            (0..nshards).map(|_| Box::new(MemBackend::new()) as _).collect(),
        ).unwrap();
        let mut unique: Vec<String> = names;
        unique.sort();
        unique.dedup();
        for name in &unique {
            let payload = name.as_bytes();
            router.append(name, payload).unwrap();
            let owner = router.shard_of(name);
            prop_assert!(owner < nshards);
            for s in 0..nshards {
                prop_assert_eq!(
                    router.shard(s).exists(name),
                    s == owner,
                    "{} landed on the wrong shard", name
                );
            }
            prop_assert_eq!(
                router.read(name, 0, payload.len() as u64).unwrap(),
                payload.to_vec()
            );
        }
        // One batch over all files, reversed: slot order is submission
        // order, not shard order.
        let reqs: Vec<ReadRequest> = unique
            .iter()
            .rev()
            .map(|n| ReadRequest::new(n.clone(), 0, n.len() as u64))
            .collect();
        for (req, res) in reqs.iter().zip(router.read_batch(&reqs)) {
            prop_assert_eq!(res.unwrap(), req.file.as_bytes().to_vec());
        }
        prop_assert_eq!(router.list(), unique);
    }
}

// ---------------------------------------------------------------------
// Replication, shard loss and read-repair
// ---------------------------------------------------------------------

/// Lowercase file names, deduplicated.
fn name_pool_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec(0u8..26, 1..10).prop_map(|cs| {
            cs.into_iter()
                .map(|c| (b'a' + c) as char)
                .collect::<String>()
        }),
        1..16,
    )
    .prop_map(|mut names| {
        names.sort();
        names.dedup();
        names
    })
}

/// A shard whose read path is permanently dead (every file "lost")
/// while its write path still works, like a re-provisioned blank OST.
fn dead_shard() -> Box<dyn StorageBackend> {
    let mut plan = FaultPlan::none();
    plan.lost_files.push(String::new()); // matches every name
    Box::new(FaultBackend::new(MemBackend::new(), plan))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replication places every file on exactly R *distinct* shards,
    /// with byte-identical copies, for any name set and any (n, r).
    #[test]
    fn replicated_writes_land_on_r_distinct_shards(
        names in name_pool_strategy(),
        nshards in 2usize..5,
        r in 2usize..4,
    ) {
        let r = r.min(nshards);
        let router = ShardRouter::replicated(
            (0..nshards).map(|_| Box::new(MemBackend::new()) as _).collect(),
            r,
        ).unwrap();
        for name in &names {
            router.append(name, name.as_bytes()).unwrap();
            router.sync(name).unwrap();
            let owners: BTreeSet<usize> =
                (0..r).map(|k| router.replica_shard_of(name, k)).collect();
            prop_assert_eq!(owners.len(), r, "{}: replica placement collided", name);
            for s in 0..nshards {
                let holds = router.shard(s).exists(name);
                prop_assert_eq!(
                    holds,
                    owners.contains(&s),
                    "{} on shard {}: expected the inverse", name, s
                );
                if holds {
                    prop_assert_eq!(
                        router.shard(s).read(name, 0, name.len() as u64).unwrap(),
                        name.as_bytes().to_vec(),
                        "{} copy on shard {} diverged", name, s
                    );
                }
            }
        }
    }

    /// With R = 2, killing ANY single shard's read path leaves every
    /// file readable through the router, and `read_repair_count`
    /// accounts for exactly the reads whose primary copy was masked.
    #[test]
    fn any_single_dead_shard_leaves_every_file_readable(
        names in name_pool_strategy(),
        nshards in 2usize..5,
    ) {
        for dead in 0..nshards {
            let shards = (0..nshards)
                .map(|s| {
                    if s == dead {
                        dead_shard()
                    } else {
                        Box::new(MemBackend::new()) as _
                    }
                })
                .collect();
            let router = ShardRouter::replicated(shards, 2).unwrap();
            for name in &names {
                router.append(name, name.as_bytes()).unwrap();
            }
            for name in &names {
                prop_assert_eq!(
                    router.read(name, 0, name.len() as u64).unwrap(),
                    name.as_bytes().to_vec(),
                    "{} unreadable with shard {} dead", name, dead
                );
            }
            let masked = names
                .iter()
                .filter(|n| router.shard_of(n) == dead)
                .count() as u64;
            prop_assert_eq!(
                router.read_repair_count(),
                masked,
                "shard {} dead: masked reads misaccounted", dead
            );
        }
    }

    /// A lost primary copy is healed by the first read through the
    /// router: the copy reappears on its home shard, byte-identical,
    /// and both the read-repair and write-back counters agree.
    #[test]
    fn read_repair_restores_byte_identical_replicas(
        names in name_pool_strategy(),
        nshards in 2usize..5,
    ) {
        let router = ShardRouter::replicated(
            (0..nshards).map(|_| Box::new(MemBackend::new()) as _).collect(),
            2,
        ).unwrap();
        for name in &names {
            router.append(name, name.as_bytes()).unwrap();
            router.shard(router.shard_of(name)).remove(name).unwrap();
        }
        for name in &names {
            prop_assert_eq!(
                router.read(name, 0, name.len() as u64).unwrap(),
                name.as_bytes().to_vec()
            );
            let home = router.shard_of(name);
            prop_assert_eq!(
                router.shard(home).read(name, 0, name.len() as u64).unwrap(),
                name.as_bytes().to_vec(),
                "{}: primary copy not healed in place", name
            );
        }
        prop_assert_eq!(router.read_repair_count(), names.len() as u64);
        prop_assert_eq!(router.writeback_count(), names.len() as u64);
    }
}
