//! Property-based tests for the PFS simulator: causality, monotonicity
//! and conservation invariants that must hold for any trace.

use mloc_pfs::{simulate_reads, CostModel, ReadOp};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = ReadOp> {
    (0u8..4, 0u64..(1 << 26), 1u64..(1 << 22))
        .prop_map(|(f, offset, len)| ReadOp::new(format!("f{f}"), offset, len))
}

fn trace_strategy() -> impl Strategy<Value = Vec<Vec<ReadOp>>> {
    proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..6), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulation_is_deterministic(traces in trace_strategy()) {
        let m = CostModel::lens_2012();
        let a = simulate_reads(&traces, &m);
        let b = simulate_reads(&traces, &m);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn conservation_of_bytes(traces in trace_strategy()) {
        let m = CostModel::lens_2012();
        let rep = simulate_reads(&traces, &m);
        let want: u64 = traces.iter().flatten().map(|o| o.len).sum();
        prop_assert_eq!(rep.total_bytes, want);
    }

    #[test]
    fn time_is_bounded_below_by_physics(traces in trace_strategy()) {
        // No rank can finish faster than its own bytes at full
        // aggregate bandwidth, and the phase cannot beat the total
        // bytes over aggregate bandwidth.
        let m = CostModel::lens_2012();
        let rep = simulate_reads(&traces, &m);
        for (r, trace) in traces.iter().enumerate() {
            let bytes: u64 = trace.iter().map(|o| o.len).sum();
            if bytes > 0 {
                let lower = bytes as f64 / m.aggregate_bw();
                prop_assert!(
                    rep.per_rank_seconds[r] >= lower,
                    "rank {} took {} < physical bound {}",
                    r, rep.per_rank_seconds[r], lower
                );
            }
        }
        let total: u64 = traces.iter().flatten().map(|o| o.len).sum();
        prop_assert!(rep.elapsed() >= total as f64 / m.aggregate_bw());
    }

    #[test]
    fn adding_work_never_speeds_up_the_phase(traces in trace_strategy(), extra in op_strategy()) {
        let m = CostModel::lens_2012();
        let before = simulate_reads(&traces, &m).elapsed();
        let mut more = traces.clone();
        more[0].push(extra);
        let after = simulate_reads(&more, &m).elapsed();
        prop_assert!(after + 1e-12 >= before, "after {after} < before {before}");
    }

    #[test]
    fn seeks_and_opens_are_sane(traces in trace_strategy()) {
        let m = CostModel::lens_2012();
        let rep = simulate_reads(&traces, &m);
        let nonempty_ops = traces.iter().flatten().filter(|o| o.len > 0).count() as u64;
        // At most one open per (rank, file) pair.
        let mut pairs = std::collections::HashSet::new();
        for (r, t) in traces.iter().enumerate() {
            for o in t.iter().filter(|o| o.len > 0) {
                pairs.insert((r, o.file.clone()));
            }
        }
        prop_assert!(rep.total_opens <= pairs.len() as u64);
        // Seeks are bounded by the number of stripe segments.
        let segments: u64 = traces
            .iter()
            .flatten()
            .map(|o| {
                if o.len == 0 {
                    0
                } else {
                    (o.offset + o.len).div_ceil(m.stripe_size) - o.offset / m.stripe_size
                }
            })
            .sum();
        prop_assert!(rep.total_seeks <= segments);
        prop_assert!(nonempty_ops == 0 || rep.total_seeks >= 1);
    }
}
