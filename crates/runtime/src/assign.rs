//! Work assignment strategies for parallel query execution.
//!
//! Paper §III-D: "Equal numbers of blocks are assigned to processes to
//! achieve load balancing. Moreover, the assignment of blocks follows
//! the column order, in which as many blocks as possible within a
//! single bin are assigned to a single process. … the column order
//! ensures that each process accesses the least number of bins and
//! thus the least number of files."

/// A mapping from ranks to work-unit indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `per_rank[r]` = indices (into the original unit list) owned by
    /// rank `r`.
    pub per_rank: Vec<Vec<usize>>,
}

impl Assignment {
    /// Total number of assigned units.
    pub fn total(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// Difference between the largest and smallest per-rank unit count.
    pub fn imbalance(&self) -> usize {
        let max = self.per_rank.iter().map(Vec::len).max().unwrap_or(0);
        let min = self.per_rank.iter().map(Vec::len).min().unwrap_or(0);
        max - min
    }
}

/// Column-order assignment: units are sorted by their group (bin) id
/// and split into contiguous, equal-size runs — so each rank touches a
/// minimal set of groups/files.
///
/// `unit_groups[i]` is the group (bin) of unit `i`. Sorting is stable,
/// so units keep their relative order within a group.
pub fn column_order(unit_groups: &[usize], nranks: usize) -> Assignment {
    assert!(nranks > 0);
    let mut order: Vec<usize> = (0..unit_groups.len()).collect();
    order.sort_by_key(|&i| unit_groups[i]);

    let n = order.len();
    let base = n / nranks;
    let extra = n % nranks;
    let mut per_rank = Vec::with_capacity(nranks);
    let mut cursor = 0usize;
    for r in 0..nranks {
        let take = base + usize::from(r < extra);
        per_rank.push(order[cursor..cursor + take].to_vec());
        cursor += take;
    }
    Assignment { per_rank }
}

/// Round-robin assignment (ablation baseline): unit `i` goes to rank
/// `i % nranks`, scattering groups across all ranks.
pub fn round_robin(unit_groups: &[usize], nranks: usize) -> Assignment {
    assert!(nranks > 0);
    let mut per_rank = vec![Vec::new(); nranks];
    for i in 0..unit_groups.len() {
        per_rank[i % nranks].push(i);
    }
    Assignment { per_rank }
}

/// Mean number of distinct groups (bin files) each rank touches — the
/// quantity column-order assignment minimizes.
pub fn distinct_groups_per_rank(assign: &Assignment, unit_groups: &[usize]) -> f64 {
    if assign.per_rank.is_empty() {
        return 0.0;
    }
    let total: usize = assign
        .per_rank
        .iter()
        .map(|units| {
            let mut groups: Vec<usize> = units.iter().map(|&u| unit_groups[u]).collect();
            groups.sort_unstable();
            groups.dedup();
            groups.len()
        })
        .sum();
    total as f64 / assign.per_rank.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups(nbins: usize, per_bin: usize) -> Vec<usize> {
        // Interleaved, as blocks arrive in spatial order.
        (0..nbins * per_bin).map(|i| i % nbins).collect()
    }

    #[test]
    fn column_order_is_balanced() {
        let g = groups(10, 33);
        let a = column_order(&g, 8);
        assert_eq!(a.total(), g.len());
        assert!(a.imbalance() <= 1);
    }

    #[test]
    fn column_order_minimizes_file_touches() {
        // Pseudo-random bin per unit so no assignment stride aligns.
        let g: Vec<usize> = (0..1024usize)
            .map(|i| (i.wrapping_mul(2654435761) >> 16) % 16)
            .collect();
        let col = column_order(&g, 8);
        let rr = round_robin(&g, 8);
        let col_touch = distinct_groups_per_rank(&col, &g);
        let rr_touch = distinct_groups_per_rank(&rr, &g);
        // Column order: each rank sees about 16/8 = 2 bins (+ boundary).
        assert!(col_touch <= 3.0, "col {col_touch}");
        // Round robin: every rank sees nearly every bin.
        assert!(rr_touch > 12.0, "rr {rr_touch}");
    }

    #[test]
    fn all_units_assigned_exactly_once() {
        let g = groups(7, 13);
        for a in [column_order(&g, 5), round_robin(&g, 5)] {
            let mut seen: Vec<usize> = a.per_rank.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..g.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_ranks_than_units() {
        let g = vec![0, 1, 2];
        let a = column_order(&g, 8);
        assert_eq!(a.total(), 3);
        assert_eq!(a.per_rank.len(), 8);
        assert!(a.per_rank.iter().filter(|u| !u.is_empty()).count() == 3);
    }

    #[test]
    fn empty_units() {
        let a = column_order(&[], 4);
        assert_eq!(a.total(), 0);
        assert_eq!(distinct_groups_per_rank(&a, &[]), 0.0);
    }

    #[test]
    fn stable_within_group() {
        // Units of the same group keep ascending order (matters for
        // sequential file access within a bin).
        let g = vec![1, 0, 1, 0, 1, 0];
        let a = column_order(&g, 2);
        assert_eq!(a.per_rank[0], vec![1, 3, 5]); // group 0 units
        assert_eq!(a.per_rank[1], vec![0, 2, 4]); // group 1 units
    }
}
