//! The SPMD launcher and per-rank communicator.

use std::any::Any;
use std::sync::{Arc, Barrier, Mutex};

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

struct Shared {
    barrier: Barrier,
    slots: Vec<Slot>,
}

/// Per-rank communicator handle. Collectives must be called by *every*
/// rank of the [`spmd`] region, in the same order (as with MPI).
pub struct Comm {
    rank: usize,
    size: usize,
    shared: Arc<Shared>,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether this rank is the root (rank 0).
    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Gather one value from every rank at the root. Returns
    /// `Some(values)` (indexed by rank) at the root, `None` elsewhere.
    pub fn gather<T: Send + 'static>(&self, value: T) -> Option<Vec<T>> {
        *self.shared.slots[self.rank].lock().unwrap() = Some(Box::new(value));
        self.barrier();
        let result = if self.is_root() {
            Some(
                self.shared
                    .slots
                    .iter()
                    .map(|s| {
                        *s.lock()
                            .unwrap()
                            .take()
                            .expect("rank missing from gather")
                            .downcast::<T>()
                            .expect("gather type mismatch")
                    })
                    .collect(),
            )
        } else {
            None
        };
        // Second barrier so slots are reusable by the next collective.
        self.barrier();
        result
    }

    /// Gather one value from every rank at *every* rank.
    pub fn all_gather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        *self.shared.slots[self.rank].lock().unwrap() = Some(Box::new(value));
        self.barrier();
        let result: Vec<T> = self
            .shared
            .slots
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .as_ref()
                    .expect("rank missing from all_gather")
                    .downcast_ref::<T>()
                    .expect("all_gather type mismatch")
                    .clone()
            })
            .collect();
        self.barrier();
        // Clear own slot after everyone has read.
        self.shared.slots[self.rank].lock().unwrap().take();
        self.barrier();
        result
    }

    /// Broadcast the root's value to all ranks. Non-root ranks pass
    /// `None`; every rank returns the root's value.
    pub fn broadcast<T: Clone + Send + 'static>(&self, value: Option<T>) -> T {
        if self.is_root() {
            let v = value.expect("root must supply a value to broadcast");
            *self.shared.slots[0].lock().unwrap() = Some(Box::new(v));
        }
        self.barrier();
        let result = self.shared.slots[0]
            .lock()
            .unwrap()
            .as_ref()
            .expect("broadcast slot empty")
            .downcast_ref::<T>()
            .expect("broadcast type mismatch")
            .clone();
        self.barrier();
        if self.is_root() {
            self.shared.slots[0].lock().unwrap().take();
        }
        self.barrier();
        result
    }

    /// Reduce values from all ranks with `f` (must be associative and
    /// commutative); every rank receives the result.
    pub fn all_reduce<T, F>(&self, value: T, f: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let mut all = self.all_gather(value).into_iter();
        let first = all.next().expect("all_reduce with zero ranks");
        all.fold(first, f)
    }
}

/// Run `f` on `nranks` ranks (one thread each) and return the per-rank
/// results, indexed by rank.
///
/// # Panics
/// Panics if `nranks == 0` or any rank panics.
pub fn spmd<T, F>(nranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Comm) -> T + Sync,
{
    assert!(nranks > 0, "need at least one rank");
    let shared = Arc::new(Shared {
        barrier: Barrier::new(nranks),
        slots: (0..nranks).map(|_| Mutex::new(None)).collect(),
    });
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nranks)
            .map(|rank| {
                let comm = Comm {
                    rank,
                    size: nranks,
                    shared: Arc::clone(&shared),
                };
                let f = &f;
                scope.spawn(move || f(&comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_distinct() {
        let mut ranks = spmd(8, |c| c.rank());
        ranks.sort_unstable();
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = spmd(6, |c| c.gather(c.rank() * 10));
        for (rank, r) in results.iter().enumerate() {
            if rank == 0 {
                assert_eq!(r.as_ref().unwrap(), &vec![0, 10, 20, 30, 40, 50]);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn all_gather_everywhere() {
        let results = spmd(5, |c| c.all_gather(format!("r{}", c.rank())));
        for r in results {
            assert_eq!(r, vec!["r0", "r1", "r2", "r3", "r4"]);
        }
    }

    #[test]
    fn broadcast_from_root() {
        let results = spmd(7, |c| {
            let v = if c.is_root() {
                Some(vec![1u8, 2, 3])
            } else {
                None
            };
            c.broadcast(v)
        });
        for r in results {
            assert_eq!(r, vec![1, 2, 3]);
        }
    }

    #[test]
    fn all_reduce_sums() {
        let results = spmd(9, |c| c.all_reduce(c.rank() as u64 + 1, |a, b| a + b));
        for r in results {
            assert_eq!(r, 45);
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock() {
        let results = spmd(4, |c| {
            let mut acc = 0usize;
            for round in 0..50 {
                acc += c.all_reduce(c.rank() + round, |a, b| a + b);
                c.barrier();
            }
            acc
        });
        assert!(results.iter().all(|&r| r == results[0]));
    }

    #[test]
    fn single_rank_works() {
        let results = spmd(1, |c| {
            assert_eq!(c.size(), 1);
            c.all_gather(42).into_iter().sum::<i32>()
        });
        assert_eq!(results, vec![42]);
    }

    #[test]
    fn mixed_collectives_in_sequence() {
        let results = spmd(3, |c| {
            let sum = c.all_reduce(1usize, |a, b| a + b);
            let all = c.all_gather(c.rank());

            c.broadcast(if c.is_root() {
                Some(sum + all.len())
            } else {
                None
            })
        });
        assert_eq!(results, vec![6, 6, 6]);
    }
}
