//! MPI-like SPMD runtime over OS threads.
//!
//! The paper handles parallel data access with MPI and MPI-IO (§III-D):
//! each process fetches and processes a subset of blocks, then the root
//! gathers results. Thin MPI bindings are unavailable here, so this
//! crate substitutes a rank-per-thread runtime with the same collective
//! surface: [`spmd`] launches `n` ranks, each receiving a [`Comm`] with
//! `barrier`, `broadcast`, `gather`, `all_gather`, and `all_reduce`.
//!
//! [`assign`] implements the paper's *column-order* block assignment:
//! equal block counts per rank, with blocks of the same bin packed onto
//! the same rank so each process opens the fewest bin files.
//!
//! [`pool`] is the scoped worker pool behind the parallel write path:
//! [`parallel_map`] fans independent items across a bounded work queue
//! and returns results in input order, so output stays deterministic
//! for any thread count.

//! # Example
//!
//! ```
//! use mloc_runtime::{column_order, spmd};
//!
//! // Four ranks sum their ids with an MPI-style all-reduce.
//! let sums = spmd(4, |comm| comm.all_reduce(comm.rank(), |a, b| a + b));
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//!
//! // Column-order assignment keeps each rank inside few bins.
//! let bins = vec![0, 0, 1, 1, 2, 2];
//! let a = column_order(&bins, 3);
//! assert!(a.per_rank.iter().all(|units| units.len() == 2));
//! ```

pub mod assign;
pub mod comm;
pub mod pool;

pub use assign::{column_order, distinct_groups_per_rank, round_robin, Assignment};
pub use comm::{spmd, Comm};
pub use pool::parallel_map;
