//! Scoped worker pool: a deterministic parallel map for CPU-bound
//! fan-out work.
//!
//! [`parallel_map`] runs `f` over a work list on up to `threads`
//! scoped OS threads (no detached threads, no `'static` bounds on the
//! borrowed environment) and returns the results *in input order*, so
//! callers get byte-identical output for any thread count. Work is
//! pulled from a shared bounded queue (one lock around the item
//! iterator), which load-balances uneven items — a worker that drew a
//! cheap item immediately pulls the next one.
//!
//! The build path uses this to fan per-chunk encoding and per-bin
//! layout across cores; anything shaped like "independent items, order
//! matters in the output" fits.

use std::sync::Mutex;

/// Map `f` over `items` on up to `threads` worker threads, returning
/// the results in input order. `f` receives `(index, item)` so workers
/// can label or seed per-item work without threading state through.
///
/// `threads <= 1` (or a single item) runs inline on the caller's
/// thread with no spawns, guaranteeing the serial path *is* the
/// parallel path with a pool of one.
///
/// # Panics
/// Propagates a panic from any worker after all workers have stopped.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Bounded work queue: the shared iterator hands out (index, item)
    // pairs; each worker keeps its results tagged by index.
    let queue = Mutex::new(items.into_iter().enumerate());
    let tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        // Take the lock only to draw the next item.
                        let next = queue.lock().unwrap().next();
                        match next {
                            Some((i, item)) => done.push((i, f(i, item))),
                            None => return done,
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });

    // Scatter back into input order.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in tagged {
        debug_assert!(slots[i].is_none(), "item {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map item lost"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = parallel_map(threads, items.clone(), |i, x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let out: Vec<u32> = parallel_map(8, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(parallel_map(8, vec![7], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let seen = Mutex::new(HashSet::new());
        parallel_map(4, (0..256).collect::<Vec<_>>(), |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // Hold the item long enough that one worker cannot drain
            // the whole queue before the others start.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        assert!(seen.lock().unwrap().len() > 1, "all work ran on one thread");
    }

    #[test]
    fn borrows_caller_state() {
        let base = [10, 20, 30, 40];
        let out = parallel_map(2, vec![0usize, 1, 2, 3], |_, i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31, 41]);
    }

    #[test]
    fn uneven_items_load_balance() {
        // One huge item plus many small ones: total wall time must be
        // far below the sum, i.e. small items ran beside the big one.
        let items: Vec<u64> = std::iter::once(400u64).chain((0..64).map(|_| 1)).collect();
        let out = parallel_map(8, items, |_, spins| {
            let mut acc = 0u64;
            for i in 0..spins * 1000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert_eq!(out.len(), 65);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        parallel_map(4, (0..32).collect::<Vec<_>>(), |_, x| {
            if x == 17 {
                panic!("boom");
            }
            x
        });
    }
}
