//! Multi-session query service over built MLOC variables.
//!
//! The execution layer answers one query per call; exploration
//! workloads are many *sessions* — queries from different tenants,
//! arriving together, over shared datasets. [`QueryServer`] admits
//! them in FIFO **admission windows** and runs each window on a
//! scoped worker pool ([`mloc_runtime::parallel_map`]), sharing two
//! cross-session structures:
//!
//! * the 16-way sharded [`BlockCache`] as the block store (decompressed
//!   index headers, bitmaps, PLoD parts survive across sessions), and
//! * an [`ExtentFuser`] that merges the coalesced-read want-lists of
//!   concurrently admitted queries, so overlapping bin extents are
//!   read from the PFS once and fanned out as `Arc`-backed views to
//!   every waiting session (see `DESIGN.md` §13).
//!
//! # Scheduling and fairness
//!
//! Sessions of the *same* tenant always run serially in submission
//! order; distinct tenants run concurrently, up to
//! [`ServeConfig::workers`] at a time. Combined with budgets charged
//! in *logical bytes* (`bytes_read + bytes_saved + fused_bytes_saved`
//! — invariant under cache and fusion state), this makes budget
//! enforcement deterministic: whether a session is admitted depends
//! only on the workload and the seed, never on thread timing, and a
//! tenant is charged for what it asked for, not for what the cache or
//! a neighbor's read happened to cover.
//!
//! # Example
//!
//! ```
//! use mloc::prelude::*;
//! use mloc_pfs::MemBackend;
//! use mloc_serve::{QueryServer, ServeConfig, SessionSpec, TenantBudget};
//!
//! let be = MemBackend::new();
//! let values: Vec<f64> = (0..256).map(|i| i as f64).collect();
//! let config = MlocConfig::builder(vec![16, 16])
//!     .chunk_shape(vec![8, 8])
//!     .num_bins(4)
//!     .build();
//! build_variable(&be, "demo", "t", &values, &config).unwrap();
//!
//! let mut server = QueryServer::new(&be, ServeConfig::default());
//! server.set_budget("alice", TenantBudget::bytes(1 << 20));
//! let sessions = vec![
//!     SessionSpec::new("alice", "demo", "t", Query::region(10.0, 90.0)),
//!     SessionSpec::new("bob", "demo", "t", Query::values_where(10.0, 90.0)),
//! ];
//! let reports = server.run(&sessions);
//! assert!(reports.iter().all(|r| r.outcome.is_ok()));
//! ```

use mloc::fusion::FusionStats;
use mloc::{
    BlockCache, CacheStats, ExtentFuser, MlocError, MlocStore, ParallelExecutor, ProgressiveStep,
    Query, QueryMetrics, QueryResult,
};
use mloc_obs::{Label, Profile, Registry};
use mloc_pfs::{CostModel, RetryPolicy, StorageBackend};
use mloc_runtime::parallel_map;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Server configuration; [`ServeConfig::default`] is a sensible
/// interactive setup (4 workers, windows of 8, cache and fusion on).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent worker threads per admission window (tenant groups
    /// are the unit of parallelism; same-tenant sessions never race).
    pub workers: usize,
    /// Sessions admitted per window. Fusion and window-scoped
    /// verification verdicts reset at window boundaries.
    pub window: usize,
    /// Shared block-cache budget in MiB (0 disables the cache).
    pub cache_mb: u64,
    /// Whether to fuse overlapping extent reads across the window's
    /// sessions.
    pub fusion: bool,
    /// Completed-read retention budget of the fuser, in MiB.
    pub fusion_window_mb: u64,
    /// Ranks each session executes over.
    pub nranks: usize,
    /// Run ranks threaded (the deployment shape) instead of replay.
    pub threaded: bool,
    /// Retry policy for transient storage errors.
    pub retry: RetryPolicy,
    /// Whether sessions may complete degraded when a non-base PLoD
    /// extent is unreadable (see the fault-tolerance contracts).
    pub allow_degraded: bool,
    /// Simulated PFS cost model used for `io_s` accounting.
    pub cost_model: CostModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            window: 8,
            cache_mb: 64,
            fusion: true,
            fusion_window_mb: 64,
            nranks: 1,
            threaded: false,
            retry: RetryPolicy::none(),
            allow_degraded: true,
            cost_model: CostModel::default(),
        }
    }
}

/// Per-tenant admission limits. A session is admitted while the
/// tenant's accumulated usage is *below* every configured limit, and
/// charged on completion — so enforcement is deterministic (the
/// decision never depends on sessions still in flight).
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantBudget {
    /// Max accumulated *logical* bytes (`bytes_read + bytes_saved +
    /// fused_bytes_saved`) before further sessions are rejected.
    /// Logical bytes are invariant under cache and fusion state, which
    /// is what makes byte budgets deterministic — and fair: a tenant
    /// is not billed less because a neighbor warmed the window.
    pub max_bytes: Option<u64>,
    /// Max accumulated simulated I/O seconds. Best-effort under
    /// fusion: the leading session of a fused read pays its I/O time.
    pub max_io_s: Option<f64>,
}

impl TenantBudget {
    /// Unlimited.
    pub fn unlimited() -> Self {
        TenantBudget::default()
    }

    /// Limit accumulated logical bytes.
    pub fn bytes(max: u64) -> Self {
        TenantBudget {
            max_bytes: Some(max),
            max_io_s: None,
        }
    }

    /// Limit accumulated simulated I/O seconds.
    pub fn io_seconds(max: f64) -> Self {
        TenantBudget {
            max_bytes: None,
            max_io_s: Some(max),
        }
    }
}

/// Accumulated per-tenant counters, reconcilable with the sum of the
/// tenant's per-session [`QueryMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantUsage {
    /// Sessions submitted.
    pub sessions: u64,
    /// Sessions that completed successfully.
    pub completed: u64,
    /// Sessions rejected by budget enforcement.
    pub rejected: u64,
    /// Sessions that failed during execution.
    pub failed: u64,
    /// Sum of `bytes_read` over completed sessions.
    pub bytes_read: u64,
    /// Sum of `bytes_saved` (cache) over completed sessions.
    pub bytes_saved: u64,
    /// Sum of `fused_bytes_saved` over completed sessions.
    pub fused_bytes_saved: u64,
    /// Sum of logical bytes — the quantity byte budgets meter.
    pub logical_bytes: u64,
    /// Sum of simulated I/O seconds over completed sessions.
    pub io_s: u64_as_f64::F64,
    /// Sum of cache hits over completed sessions.
    pub cache_hits: u64,
    /// Sum of cache misses over completed sessions.
    pub cache_misses: u64,
    /// Sum of fused reads over completed sessions.
    pub fused_reads: u64,
    /// Sum of transient-read retries over completed sessions.
    pub retries: u64,
}

/// `f64` totals inside an otherwise-integer usage struct, kept in a
/// tiny module so `TenantUsage` can stay `Copy + PartialEq`.
mod u64_as_f64 {
    /// A plain `f64` newtype (exists only for documentation symmetry).
    pub type F64 = f64;
}

/// One session: a tenant's query against a built variable.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Billing/fairness identity.
    pub tenant: String,
    /// Dataset name.
    pub dataset: String,
    /// Variable name.
    pub var: String,
    /// The query to run.
    pub query: Query,
    /// Run as a progressive ladder instead of one shot: the session
    /// serves a base-precision step and pulls byte-group refinements
    /// (through the shared cache and fuser) until done or until
    /// `target_error` is met. Budgets are charged on the cumulative
    /// metrics over all steps taken.
    pub progressive: bool,
    /// Stop refining once the worst-case relative error bound is at or
    /// below this (progressive sessions only; `None` refines to the
    /// query's full target level).
    pub target_error: Option<f64>,
}

impl SessionSpec {
    /// Convenience constructor.
    pub fn new(tenant: &str, dataset: &str, var: &str, query: Query) -> Self {
        SessionSpec {
            tenant: tenant.to_string(),
            dataset: dataset.to_string(),
            var: var.to_string(),
            query,
            progressive: false,
            target_error: None,
        }
    }

    /// Run this session as a progressive ladder.
    pub fn progressive(mut self) -> Self {
        self.progressive = true;
        self
    }

    /// Progressive ladder that stops once the error bound reaches
    /// `eps` (implies [`SessionSpec::progressive`]).
    pub fn with_target_error(mut self, eps: f64) -> Self {
        self.progressive = true;
        self.target_error = Some(eps);
        self
    }
}

/// Why a session produced no result.
#[derive(Debug)]
pub enum ServeError {
    /// Rejected at admission: the tenant's accumulated usage already
    /// met or exceeded a budget limit.
    BudgetExceeded {
        /// The tenant whose budget ran out.
        tenant: String,
        /// Which resource (`"bytes"` or `"io_s"`).
        resource: &'static str,
        /// Usage at the admission check.
        used: f64,
        /// The configured limit.
        limit: f64,
    },
    /// The variable could not be opened.
    Open {
        /// Dataset name.
        dataset: String,
        /// Variable name.
        var: String,
        /// Rendered open error.
        error: String,
    },
    /// The query failed during execution.
    Query(MlocError),
}

impl ServeError {
    /// Whether this is a budget rejection (an expected, deterministic
    /// outcome) rather than an execution failure.
    pub fn is_budget(&self) -> bool {
        matches!(self, ServeError::BudgetExceeded { .. })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BudgetExceeded {
                tenant,
                resource,
                used,
                limit,
            } => write!(
                f,
                "tenant {tenant}: {resource} budget exceeded ({used} used, limit {limit})"
            ),
            ServeError::Open {
                dataset,
                var,
                error,
            } => write!(f, "cannot open {dataset}/{var}: {error}"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What happened to one submitted session.
#[derive(Debug)]
pub struct SessionReport {
    /// Index into the submitted session slice.
    pub index: usize,
    /// The session's tenant.
    pub tenant: String,
    /// Which admission window ran it.
    pub window: usize,
    /// The result, or why there is none.
    pub outcome: Result<QueryResult, ServeError>,
    /// Per-session metrics (present iff the query executed and
    /// succeeded). For progressive sessions these are cumulative over
    /// every step taken.
    pub metrics: Option<QueryMetrics>,
    /// The progressive ladder's step log (progressive sessions only).
    pub steps: Option<Vec<ProgressiveStep>>,
    /// Wall-clock seconds from admission to completion (informational;
    /// use `metrics.response_s` for deterministic latency).
    pub wall_s: f64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A resident query server over one storage backend.
///
/// `run` executes a batch of sessions window by window; the cache,
/// fuser, tenant usage, and obs counters persist across `run` calls,
/// so a long-lived server keeps its warm state between batches.
pub struct QueryServer<'a> {
    backend: &'a dyn StorageBackend,
    config: ServeConfig,
    cache: Option<Arc<BlockCache>>,
    fuser: Option<Arc<ExtentFuser>>,
    budgets: HashMap<String, TenantBudget>,
    usage: Mutex<BTreeMap<String, TenantUsage>>,
    registry: Registry,
}

impl<'a> QueryServer<'a> {
    /// A server over `backend` with shared cache and fuser built from
    /// `config`.
    pub fn new(backend: &'a dyn StorageBackend, config: ServeConfig) -> Self {
        let cache =
            (config.cache_mb > 0).then(|| Arc::new(BlockCache::with_budget_mb(config.cache_mb)));
        let fuser = config
            .fusion
            .then(|| Arc::new(ExtentFuser::with_window_mb(config.fusion_window_mb)));
        QueryServer {
            backend,
            config,
            cache,
            fuser,
            budgets: HashMap::new(),
            usage: Mutex::new(BTreeMap::new()),
            registry: Registry::new(true),
        }
    }

    /// Set (or replace) a tenant's budget. Tenants without a budget
    /// are unlimited.
    pub fn set_budget(&mut self, tenant: &str, budget: TenantBudget) {
        self.budgets.insert(tenant.to_string(), budget);
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Shared block-cache statistics (None when the cache is off).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Extent-fusion statistics (None when fusion is off).
    pub fn fusion_stats(&self) -> Option<FusionStats> {
        self.fuser.as_ref().map(|f| f.stats())
    }

    /// Snapshot of per-tenant usage.
    pub fn usage(&self) -> BTreeMap<String, TenantUsage> {
        lock(&self.usage).clone()
    }

    /// Snapshot of the server's obs counters (`serve.*`).
    pub fn profile(&self) -> Profile {
        self.registry.snapshot()
    }

    /// Run a batch of sessions and return one report per session, in
    /// submission order.
    ///
    /// Sessions are admitted in FIFO windows of [`ServeConfig::window`].
    /// Within a window, sessions are grouped by tenant (preserving
    /// submission order inside each group) and the groups run
    /// concurrently on up to [`ServeConfig::workers`] threads; the
    /// fuser's admission window rotates at every window boundary.
    pub fn run(&self, sessions: &[SessionSpec]) -> Vec<SessionReport> {
        // Open each distinct variable once; sessions share the store.
        let mut stores: HashMap<(String, String), Result<MlocStore<'a>, String>> = HashMap::new();
        for s in sessions {
            let k = (s.dataset.clone(), s.var.clone());
            stores.entry(k).or_insert_with(|| {
                MlocStore::open(self.backend, &s.dataset, &s.var)
                    .map(|mut st| {
                        if let Some(c) = &self.cache {
                            st.set_cache(Some(Arc::clone(c)));
                        }
                        if let Some(f) = &self.fuser {
                            st.set_fusion(Some(Arc::clone(f)));
                        }
                        st
                    })
                    .map_err(|e| e.to_string())
            });
        }

        let mut exec = ParallelExecutor::new(self.config.nranks.max(1), self.config.cost_model)
            .with_retry(self.config.retry)
            .allow_degraded(self.config.allow_degraded);
        if self.config.threaded {
            exec = exec.threaded(true);
        }

        let window = self.config.window.max(1);
        let mut reports: Vec<Option<SessionReport>> = (0..sessions.len()).map(|_| None).collect();
        for (w, chunk) in sessions.chunks(window).enumerate() {
            if let Some(f) = &self.fuser {
                f.begin_window();
            }
            // Group the window's sessions by tenant, first-appearance
            // order; each group is one unit of (serial) work.
            let base = w * window;
            let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
            for (k, s) in chunk.iter().enumerate() {
                match groups.iter_mut().find(|(t, _)| *t == s.tenant) {
                    Some((_, idxs)) => idxs.push(base + k),
                    None => groups.push((s.tenant.clone(), vec![base + k])),
                }
            }
            let produced: Vec<Vec<SessionReport>> =
                parallel_map(self.config.workers.max(1), groups, |_, (tenant, idxs)| {
                    idxs.into_iter()
                        .map(|i| self.run_session(i, w, &tenant, &sessions[i], &stores, &exec))
                        .collect()
                });
            for r in produced.into_iter().flatten() {
                let slot = r.index;
                reports[slot] = Some(r);
            }
        }
        reports
            .into_iter()
            .map(|r| r.expect("every session produces a report"))
            .collect()
    }

    fn run_session(
        &self,
        index: usize,
        window: usize,
        tenant: &str,
        spec: &SessionSpec,
        stores: &HashMap<(String, String), Result<MlocStore<'a>, String>>,
        exec: &ParallelExecutor,
    ) -> SessionReport {
        let t0 = Instant::now();
        self.registry.count("serve.sessions", 1);
        {
            let mut usage = lock(&self.usage);
            let u = usage.entry(tenant.to_string()).or_default();
            u.sessions += 1;
        }
        // Admission check against usage accumulated by *completed*
        // sessions of this tenant (same-tenant sessions are serial, so
        // the decision is deterministic).
        if let Some(b) = self.budgets.get(tenant) {
            let u = *lock(&self.usage).get(tenant).expect("usage entry exists");
            let over: Option<(&'static str, f64, f64)> = match (b.max_bytes, b.max_io_s) {
                (Some(mb), _) if u.logical_bytes >= mb => {
                    Some(("bytes", u.logical_bytes as f64, mb as f64))
                }
                (_, Some(ms)) if u.io_s >= ms => Some(("io_s", u.io_s, ms)),
                _ => None,
            };
            if let Some((resource, used, limit)) = over {
                lock(&self.usage)
                    .get_mut(tenant)
                    .expect("usage entry exists")
                    .rejected += 1;
                self.registry.count("serve.rejected", 1);
                self.registry
                    .count_labeled("serve.rejected_by", Label::Name(resource), 1);
                return SessionReport {
                    index,
                    tenant: tenant.to_string(),
                    window,
                    outcome: Err(ServeError::BudgetExceeded {
                        tenant: tenant.to_string(),
                        resource,
                        used,
                        limit,
                    }),
                    metrics: None,
                    steps: None,
                    wall_s: t0.elapsed().as_secs_f64(),
                };
            }
        }

        let store = match stores
            .get(&(spec.dataset.clone(), spec.var.clone()))
            .expect("store pre-opened for every session")
        {
            Ok(st) => st,
            Err(e) => {
                lock(&self.usage)
                    .get_mut(tenant)
                    .expect("usage entry exists")
                    .failed += 1;
                self.registry.count("serve.failed", 1);
                return SessionReport {
                    index,
                    tenant: tenant.to_string(),
                    window,
                    outcome: Err(ServeError::Open {
                        dataset: spec.dataset.clone(),
                        var: spec.var.clone(),
                        error: e.clone(),
                    }),
                    metrics: None,
                    steps: None,
                    wall_s: t0.elapsed().as_secs_f64(),
                };
            }
        };

        let executed: Result<(QueryResult, QueryMetrics, Option<Vec<ProgressiveStep>>), MlocError> =
            if spec.progressive {
                // Progressive ladder: refinement pulls re-enter the
                // shared cache and fuser, so a warm step reads only
                // byte groups no session has fetched yet.
                exec.progressive(store, &spec.query).and_then(|mut pq| {
                    match spec.target_error {
                        Some(eps) => pq.run_to_target_error(eps)?,
                        None => pq.run_to_completion()?,
                    }
                    let (res, m, steps, _) = pq.into_outcome();
                    Ok((res, m, Some(steps)))
                })
            } else {
                exec.execute(store, &spec.query).map(|(r, m)| (r, m, None))
            };
        match executed {
            Ok((res, m, steps)) => {
                let logical = m.bytes_read + m.bytes_saved + m.fused_bytes_saved;
                {
                    let mut usage = lock(&self.usage);
                    let u = usage.entry(tenant.to_string()).or_default();
                    u.completed += 1;
                    u.bytes_read += m.bytes_read;
                    u.bytes_saved += m.bytes_saved;
                    u.fused_bytes_saved += m.fused_bytes_saved;
                    u.logical_bytes += logical;
                    u.io_s += m.io_s;
                    u.cache_hits += m.cache_hits;
                    u.cache_misses += m.cache_misses;
                    u.fused_reads += m.fused_reads;
                    u.retries += m.retries;
                }
                self.registry.count("serve.completed", 1);
                self.registry.count("serve.bytes_read", m.bytes_read);
                self.registry.count("serve.bytes_saved", m.bytes_saved);
                self.registry
                    .count("serve.fused_bytes_saved", m.fused_bytes_saved);
                self.registry.record("serve.io", m.io_s);
                if let Some(steps) = &steps {
                    self.registry.count("serve.progressive.sessions", 1);
                    self.registry
                        .count("serve.progressive.steps", steps.len() as u64);
                    self.registry.count(
                        "serve.progressive.refine_bytes",
                        steps.iter().skip(1).map(|s| s.bytes_read).sum::<u64>(),
                    );
                }
                SessionReport {
                    index,
                    tenant: tenant.to_string(),
                    window,
                    outcome: Ok(res),
                    metrics: Some(m),
                    steps,
                    wall_s: t0.elapsed().as_secs_f64(),
                }
            }
            Err(e) => {
                lock(&self.usage)
                    .get_mut(tenant)
                    .expect("usage entry exists")
                    .failed += 1;
                self.registry.count("serve.failed", 1);
                SessionReport {
                    index,
                    tenant: tenant.to_string(),
                    window,
                    outcome: Err(ServeError::Query(e)),
                    metrics: None,
                    steps: None,
                    wall_s: t0.elapsed().as_secs_f64(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mloc::prelude::*;
    use mloc_datagen::gts_like_2d;
    use mloc_pfs::MemBackend;

    fn build(be: &MemBackend) -> Vec<f64> {
        let field = gts_like_2d(32, 32, 7);
        let config = MlocConfig::builder(vec![32, 32])
            .chunk_shape(vec![8, 8])
            .num_bins(4)
            .build();
        build_variable(be, "ds", "v", field.values(), &config).unwrap();
        field.into_values()
    }

    fn specs(n: usize) -> Vec<SessionSpec> {
        (0..n)
            .map(|i| {
                SessionSpec::new(
                    if i % 2 == 0 { "a" } else { "b" },
                    "ds",
                    "v",
                    Query::values_where(-1.0 + 0.1 * (i % 3) as f64, 1.5),
                )
            })
            .collect()
    }

    #[test]
    fn sessions_match_direct_execution() {
        let be = MemBackend::new();
        build(&be);
        // Cache off so repeated extents are served by the fuser's
        // window retention (deterministically fused) instead of being
        // absorbed by the block cache before they reach the read path.
        let config = ServeConfig {
            cache_mb: 0,
            ..ServeConfig::default()
        };
        let server = QueryServer::new(&be, config);
        let sessions = specs(6);
        let reports = server.run(&sessions);
        let store = MlocStore::open(&be, "ds", "v").unwrap();
        for (r, s) in reports.iter().zip(&sessions) {
            let direct = store.query_serial(&s.query).unwrap();
            let got = r.outcome.as_ref().unwrap();
            assert_eq!(got.positions(), direct.positions(), "session {}", r.index);
            assert_eq!(r.tenant, s.tenant);
        }
        let usage = server.usage();
        assert_eq!(usage["a"].completed, 3);
        assert_eq!(usage["b"].completed, 3);
        assert!(server.fusion_stats().unwrap().fused_reads > 0 || sessions.len() < 2);
    }

    #[test]
    fn byte_budget_rejections_are_deterministic() {
        let be = MemBackend::new();
        build(&be);
        let run_once = || {
            let mut server = QueryServer::new(&be, ServeConfig::default());
            server.set_budget("a", TenantBudget::bytes(4_000));
            let reports = server.run(&specs(8));
            reports
                .iter()
                .map(|r| match &r.outcome {
                    Ok(_) => 'o',
                    Err(e) if e.is_budget() => 'b',
                    Err(_) => 'x',
                })
                .collect::<String>()
        };
        let first = run_once();
        assert!(first.contains('b'), "tiny budget never tripped: {first}");
        assert!(first.contains('o'), "first session must be admitted");
        assert!(!first.contains('x'));
        for _ in 0..3 {
            assert_eq!(run_once(), first, "budget outcomes must be deterministic");
        }
    }

    #[test]
    fn progressive_sessions_share_cache_and_match_one_shot() {
        let be = MemBackend::new();
        build(&be);
        let server = QueryServer::new(&be, ServeConfig::default());
        // Spatial value query: no value constraint, so every touched
        // bin is refinable by the ladder.
        let q = Query::values_in(Region::new(vec![(4, 28), (0, 32)]));
        let sessions = vec![
            SessionSpec::new("a", "ds", "v", q.clone()).progressive(),
            // Same tenant, same query, after the first: the warm
            // ladder should be answered largely from the shared cache.
            SessionSpec::new("a", "ds", "v", q.clone()).progressive(),
            SessionSpec::new("b", "ds", "v", q.clone()).with_target_error(1e-3),
        ];
        let reports = server.run(&sessions);
        let store = MlocStore::open(&be, "ds", "v").unwrap();
        let direct = store.query_serial(&q).unwrap();

        let full = reports[0].outcome.as_ref().unwrap();
        assert_eq!(full.positions(), direct.positions());
        for (a, b) in full.values().unwrap().iter().zip(direct.values().unwrap()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let steps = reports[0].steps.as_ref().unwrap();
        assert!(steps.len() > 1);
        assert!(steps.last().unwrap().done);
        // Warm repeat: every refinement byte was already cached.
        let warm = reports[1].steps.as_ref().unwrap();
        assert_eq!(warm.iter().skip(1).map(|s| s.bytes_read).sum::<u64>(), 0);
        assert!(warm.iter().skip(1).map(|s| s.bytes_saved).sum::<u64>() > 0);
        // Early stop honors the target error bound.
        let capped = reports[2].steps.as_ref().unwrap();
        assert!(capped.last().unwrap().error_bound <= 1e-3);
        assert!(capped.len() < steps.len());
        // Budgets metered the cumulative ladder, in logical bytes.
        let m0 = reports[0].metrics.as_ref().unwrap();
        let usage = server.usage();
        assert!(usage["a"].logical_bytes >= m0.bytes_read + m0.bytes_saved);
    }

    #[test]
    fn unknown_variable_reports_open_error() {
        let be = MemBackend::new();
        build(&be);
        let server = QueryServer::new(&be, ServeConfig::default());
        let reports = server.run(&[SessionSpec::new(
            "a",
            "ds",
            "missing",
            Query::region(0.0, 1.0),
        )]);
        match &reports[0].outcome {
            Err(ServeError::Open { var, .. }) => assert_eq!(var, "missing"),
            other => panic!("expected open error, got {other:?}"),
        }
        assert_eq!(server.usage()["a"].failed, 1);
    }
}
