//! Climate-analysis scenario (paper §III-A.2): "for climate datasets,
//! scientists may be mostly interested in queries of temperature
//! values within a certain spatial region" — spatially-constrained
//! (SC) value queries are the priority pattern.
//!
//! This example stores a 3-D field, compares the Hilbert chunk order
//! against row-major order for sub-volume access, and demonstrates a
//! combined VC+SC query ("regions within the window with abnormally
//! high values").
//!
//! Run with: `cargo run --release -p mloc-examples --bin climate_region`

use mloc::prelude::*;
use mloc_datagen::s3d_like_3d;
use mloc_hilbert::CurveKind;
use mloc_pfs::MemBackend;

fn build_with_curve(
    backend: &MemBackend,
    values: &[f64],
    curve: CurveKind,
    var: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    // Units sized per the paper's rule (§III-C): few enough bins that
    // a chunk's per-bin byte groups stay well above the readahead
    // granularity, so layout order — not accidental gap-bridging —
    // decides the seek count.
    let config = MlocConfig::builder(vec![128, 128, 128])
        .chunk_shape(vec![16, 16, 16])
        .num_bins(10)
        .curve(curve)
        .build();
    build_variable(backend, "climate", var, values, &config)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let field = s3d_like_3d(128, 128, 128, 21);
    let backend = MemBackend::new();
    build_with_curve(&backend, field.values(), CurveKind::Hilbert, "t_hilbert")?;
    build_with_curve(&backend, field.values(), CurveKind::RowMajor, "t_rowmajor")?;

    // "What are the temperatures within this sub-volume?" A slab-like
    // window (wide in x/y, shallow in z) is where curve order matters
    // most: row-major linearization scatters it into one run per row.
    let window = Region::new(vec![(32, 96), (16, 80), (0, 32)]);
    println!(
        "value query over a {}-point sub-volume:",
        window.num_points()
    );
    for var in ["t_hilbert", "t_rowmajor"] {
        let store = MlocStore::open(&backend, "climate", var)?;
        let (res, m) = store.query_with_metrics(&Query::values_in(window.clone()))?;
        println!(
            "  {var:11}: {} values, {} seeks, simulated I/O {:.3}s",
            res.len(),
            m.seeks,
            m.io_s
        );
    }

    // Combined pattern: "regions within the window with abnormally
    // high temperature" (VC + SC).
    let store = MlocStore::open(&backend, "climate", "t_hilbert")?;
    let q = Query::values_where(1500.0, f64::MAX).with_region(window);
    let (anomalies, m) = store.query_with_metrics(&q)?;
    println!(
        "combined VC+SC query: {} anomalous cells, {} bins touched, {:.3}s",
        anomalies.len(),
        m.bins_touched,
        m.response_s
    );
    if let Some(values) = anomalies.values() {
        if let Some(max) = values.iter().cloned().reduce(f64::max) {
            println!("hottest anomaly: {max:.1} K");
        }
    }

    Ok(())
}
