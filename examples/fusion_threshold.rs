//! Fusion-analysis scenario (paper §III-A.2): "for fusion simulation
//! datasets scientists may mainly be interested in queries of regions
//! with temperature values higher than some threshold" — i.e.
//! value-constrained (VC) region queries are the priority pattern.
//!
//! This example builds a GTS-like dataset with the VC-priority MLOC
//! configuration, runs threshold queries in parallel over the MPI-like
//! runtime, and shows the aligned-bin fast path at work.
//!
//! Run with: `cargo run --release -p mloc-examples --bin fusion_threshold`

use mloc::prelude::*;
use mloc::query::multivar::select_then_fetch;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{CostModel, MemBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = vec![1024, 1024];
    let temperature = gts_like_2d(1024, 1024, 3);
    let density = gts_like_2d(1024, 1024, 4);

    let backend = MemBackend::new();
    // V-M-S order: value binning has top priority, then byte-level
    // multi-resolution, then Hilbert chunk order.
    let config = MlocConfig::builder(shape.clone())
        .chunk_shape(vec![128, 128])
        .num_bins(100)
        .level_order(LevelOrder::Vms)
        .build();
    build_variable(
        &backend,
        "gts",
        "temperature",
        temperature.values(),
        &config,
    )?;
    build_variable(&backend, "gts", "density", density.values(), &config)?;
    let temp = MlocStore::open(&backend, "gts", "temperature")?;
    let dens = MlocStore::open(&backend, "gts", "density")?;

    // Threshold: the hottest 2% of the plasma.
    let mut sorted = temperature.values().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = sorted[sorted.len() * 98 / 100];
    println!("threshold: temperature >= {threshold:.1}");

    // Parallel region query over 8 ranks.
    let exec = ParallelExecutor::new(8, CostModel::lens_2012());
    let (hot, m) = exec.execute(&temp, &Query::region(threshold, f64::MAX))?;
    println!(
        "{} hot cells; bins touched {} (aligned {}), chunks {}, \
         io {:.3}s + decompress {:.3}s + reconstruct {:.3}s = {:.3}s",
        hot.len(),
        m.bins_touched,
        m.aligned_bins,
        m.chunks_touched,
        m.io_s,
        m.decompress_s,
        m.reconstruct_s,
        m.response_s,
    );

    // Multi-variable: fetch the *density* at the hot cells — region
    // selection on one variable drives value retrieval on another
    // (paper §III-D.4), synchronized as a bitmap.
    let out = select_then_fetch(
        &temp,
        &dens,
        (threshold, f64::MAX),
        None,
        PlodLevel::FULL,
        &exec,
    )?;
    let mean_density: f64 =
        out.result.values().unwrap().iter().sum::<f64>() / out.result.len().max(1) as f64;
    println!(
        "density at hot cells: {} values fetched from {} chunks, mean {:.2}, \
         two-step response {:.3}s",
        out.result.len(),
        out.fetch_metrics.chunks_touched,
        mean_density,
        out.response_s(),
    );

    Ok(())
}
