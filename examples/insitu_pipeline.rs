//! In-situ pipeline scenario (paper §I contribution 4): MLOC's data
//! processing pipeline is designed to sit inside a data-staging
//! service (DataStager / PreDatA) so the layout optimization and
//! compression happen *while the simulation runs*, chunk by chunk —
//! no post-hoc reorganization pass over the full dataset.
//!
//! This example plays the role of the staging service: a "simulation"
//! emits one time step at a time, each as a stream of chunks in an
//! arbitrary order; every step is laid out in-situ and becomes
//! queryable the moment it is finished, while later steps are still
//! being produced.
//!
//! Run with: `cargo run --release -p mloc-examples --bin insitu_pipeline`

use mloc::dataset::Dataset;
use mloc::prelude::*;
use mloc_datagen::gts_like_2d;
use mloc_pfs::MemBackend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backend = MemBackend::new();
    let config = MlocConfig::builder(vec![512, 512])
        .chunk_shape(vec![64, 64])
        .num_bins(32)
        .build();
    let ds = Dataset::create(&backend, "campaign", config)?;

    // The simulation emits 4 time steps of a potential field.
    for step in 0..4u32 {
        let field = gts_like_2d(512, 512, 100 + u64::from(step));

        // Bin bounds come from a small sample of the first chunks the
        // stager sees — the paper computes them "from partial dataset".
        let sample: Vec<f64> = field.values().iter().step_by(97).copied().collect();
        let mut stream = ds.stream_timestep("potential", step, &sample)?;

        // Chunks arrive in whatever order the simulation's domain
        // decomposition flushes them — here, reversed.
        let grid = stream.grid().clone();
        for chunk in (0..grid.num_chunks()).rev() {
            let chunk_values: Vec<f64> = grid
                .chunk_linear_indices(chunk)
                .iter()
                .map(|&l| field.values()[l as usize])
                .collect();
            stream.push_chunk(chunk, &chunk_values)?;
        }
        let report = stream.finish()?;
        println!(
            "step {step}: laid out in-situ, {:.0}% of raw, {:.2}s",
            report.total_ratio() * 100.0,
            report.build_seconds
        );

        // Earlier steps are already queryable while the run continues.
        let store = ds.store_at("potential", step)?;
        let (hot, m) = store.query_with_metrics(&Query::region(2000.0, f64::MAX))?;
        println!(
            "  step {step} query: {} hot cells, {} aligned bins, io {:.3}s",
            hot.len(),
            m.aligned_bins,
            m.io_s
        );
    }

    // Post-campaign: track the hot-region size across time steps.
    println!("time evolution of the hot region:");
    for step in ds.timesteps("potential")? {
        let store = ds.store_at("potential", step)?;
        let hot = store.query_serial(&Query::region(2000.0, f64::MAX))?;
        println!(
            "  t={step}: {:6} cells ({:.2}% of domain)",
            hot.len(),
            hot.len() as f64 / (512.0 * 512.0) * 100.0
        );
    }
    Ok(())
}
