//! Multi-resolution analytics scenario (paper §III-B.3, Table VI):
//! run a statistics kernel on progressively more precise views of the
//! data — first the subset-based sample, then precision-based (PLoD)
//! views — and watch accuracy converge while I/O stays bounded.
//!
//! Run with: `cargo run --release -p mloc-examples --bin multires_analytics`

use mloc::prelude::*;
use mloc::query::multires::{plod_value_query, subset_value_query};
use mloc_analytics::{mean, variance};
use mloc_datagen::s3d_like_3d;
use mloc_pfs::MemBackend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let field = s3d_like_3d(96, 96, 96, 17);
    let backend = MemBackend::new();
    let config = MlocConfig::builder(vec![96, 96, 96])
        .chunk_shape(vec![12, 12, 12])
        .num_bins(40)
        .build();
    build_variable(&backend, "s3d", "temp", field.values(), &config)?;
    let store = MlocStore::open(&backend, "s3d", "temp")?;
    let exec = ParallelExecutor::serial();

    let exact_mean = mean(field.values());
    let exact_var = variance(field.values());
    println!("exact:        mean {exact_mean:.4}   variance {exact_var:.1}");

    // Subset-based multi-resolution: uniform chunk samples.
    println!("-- subset-based (hierarchical Hilbert sampling) --");
    for level in 0..4 {
        let (res, m) = subset_value_query(&store, 4, level, &exec)?;
        let vals = res.values().unwrap();
        println!(
            "level {level}: {:7} points ({:5.1}% of data), mean {:.4} \
             ({:+.3}% off), io {:.3}s",
            res.len(),
            res.len() as f64 / field.len() as f64 * 100.0,
            mean(vals),
            (mean(vals) - exact_mean) / exact_mean * 100.0,
            m.io_s
        );
    }

    // Precision-based multi-resolution: every point, fewer bytes.
    println!("-- precision-based (PLoD byte prefixes) --");
    let window = Region::full(&[96, 96, 96]);
    for level in [1u8, 2, 3, 7] {
        let plod = PlodLevel::new(level)?;
        let (res, m) = plod_value_query(&store, window.clone(), plod, &exec)?;
        let vals = res.values().unwrap();
        println!(
            "{} bytes: mean {:.4} ({:+.5}% off), variance {:.1}, \
             data read {:.1} MiB",
            plod.num_bytes(),
            mean(vals),
            (mean(vals) - exact_mean) / exact_mean * 100.0,
            variance(vals),
            m.data_bytes as f64 / 1048576.0
        );
    }

    Ok(())
}
