//! Quickstart: build an MLOC layout for a small field, run the three
//! basic query shapes, and look at the metrics.
//!
//! Run with: `cargo run --release -p mloc-examples --bin quickstart`

use mloc::prelude::*;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{MemBackend, StorageBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic 512x512 scalar field (plasma-turbulence-like).
    let field = gts_like_2d(512, 512, 7);
    println!("generated {} points", field.len());

    // 2. Reorganize it into the MLOC layout: 32 equal-frequency value
    //    bins, 64x64 Hilbert-ordered chunks, PLoD byte columns
    //    compressed with the DEFLATE-style codec (the MLOC-COL
    //    configuration), one data + one index file per bin.
    let backend = MemBackend::new();
    let config = MlocConfig::builder(vec![512, 512])
        .chunk_shape(vec![64, 64])
        .num_bins(32)
        .build();
    let report = build_variable(&backend, "demo", "potential", field.values(), &config)?;
    println!(
        "built: {} data + {} index bytes ({:.0}% of raw), {} files",
        report.data_bytes,
        report.index_bytes,
        report.total_ratio() * 100.0,
        backend.list().len()
    );

    let store = MlocStore::open(&backend, "demo", "potential")?;

    // 3a. Region query: WHERE is the potential in the top decile?
    let mut sorted = field.values().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p90 = sorted[sorted.len() * 9 / 10];
    let (hot, metrics) = store.query_with_metrics(&Query::region(p90, f64::MAX))?;
    println!(
        "region query: {} hot points; {} of {} bins touched ({} aligned), \
         simulated I/O {:.3}s",
        hot.len(),
        metrics.bins_touched,
        store.config().num_bins,
        metrics.aligned_bins,
        metrics.io_s
    );

    // 3b. Value query: WHAT are the values in a sub-plane?
    let window = Region::new(vec![(100, 160), (200, 280)]);
    let (sub, metrics) = store.query_with_metrics(&Query::values_in(window.clone()))?;
    println!(
        "value query: {} values from {} chunks, {:.1} KiB read",
        sub.len(),
        metrics.chunks_touched,
        metrics.bytes_read as f64 / 1024.0
    );

    // 3c. The same window at reduced precision (3-byte PLoD): far less
    //     I/O, bounded relative error.
    let q = Query::values_in(window).with_plod(PlodLevel::new(2)?);
    let (approx, m2) = store.query_with_metrics(&q)?;
    let max_rel = sub
        .values()
        .unwrap()
        .iter()
        .zip(approx.values().unwrap())
        .map(|(a, b)| ((a - b) / a).abs())
        .fold(0.0f64, f64::max)
        * 100.0;
    println!(
        "PLoD-3B query: {:.1} KiB read ({:.0}% of full), max rel. error {:.4}%",
        m2.bytes_read as f64 / 1024.0,
        m2.bytes_read as f64 / metrics.bytes_read as f64 * 100.0,
        max_rel
    );

    Ok(())
}
