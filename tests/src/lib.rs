//! Integration-test package for the MLOC workspace. The tests live in
//! `tests/tests/`; this library is intentionally empty.
