//! The parallel write path, end to end: byte-determinism across
//! thread counts, order-independence of the streaming builder, and its
//! error paths.

use mloc::build::StreamingBuilder;
use mloc::config::LevelOrder;
use mloc::dataset::Dataset;
use mloc::prelude::*;
use mloc::ChunkGrid;
use mloc_compress::CodecKind;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{MemBackend, StorageBackend};
use std::collections::BTreeMap;

const SHAPE: [usize; 2] = [64, 64];
const CHUNK: [usize; 2] = [16, 16];

fn field() -> Vec<f64> {
    gts_like_2d(SHAPE[0], SHAPE[1], 77).into_values()
}

fn config(order: LevelOrder, codec: CodecKind, plod: bool, threads: usize) -> MlocConfig {
    MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(CHUNK.to_vec())
        .num_bins(6)
        .level_order(order)
        .codec(codec)
        .plod(plod)
        .build_threads(threads)
        .build()
}

fn all_files(be: &MemBackend) -> BTreeMap<String, Vec<u8>> {
    be.list()
        .into_iter()
        .map(|f| {
            let len = be.len(&f).unwrap();
            let bytes = be.read(&f, 0, len).unwrap();
            (f, bytes)
        })
        .collect()
}

fn build_all(values: &[f64], config: &MlocConfig) -> BTreeMap<String, Vec<u8>> {
    let be = MemBackend::new();
    build_variable(&be, "d", "v", values, config).unwrap();
    all_files(&be)
}

/// Acceptance matrix: 1, 2, and 8 build threads must produce
/// byte-identical bin data and index files for every level order ×
/// codec × PLoD combination the configuration accepts (ISABELA is
/// lossy, so it cannot drive PLoD byte columns).
#[test]
fn thread_count_never_changes_bytes() {
    let values = field();
    let cases: Vec<(CodecKind, bool)> = vec![
        (CodecKind::Deflate, true),
        (CodecKind::Deflate, false),
        (CodecKind::Isobar, true),
        (CodecKind::Isobar, false),
        (CodecKind::Isabela { error_bound: 1e-3 }, false),
    ];
    for order in [LevelOrder::Vms, LevelOrder::Vsm] {
        for &(codec, plod) in &cases {
            let reference = build_all(&values, &config(order, codec, plod, 1));
            assert!(
                reference.keys().any(|f| f.ends_with(".dat"))
                    && reference.keys().any(|f| f.ends_with(".idx")),
                "build produced no bin files"
            );
            for threads in [2usize, 8] {
                let got = build_all(&values, &config(order, codec, plod, threads));
                assert_eq!(
                    reference,
                    got,
                    "bytes differ: {threads} threads vs serial \
                     ({order:?}, {} codec, plod={plod})",
                    codec.name()
                );
            }
        }
    }
}

/// Queries against a parallel build read back the same answers as
/// against a serial build (belt to the byte-identity suspenders).
#[test]
fn parallel_build_is_queryable() {
    let values = field();
    let be = MemBackend::new();
    build_variable(
        &be,
        "d",
        "v",
        &values,
        &config(LevelOrder::Vms, CodecKind::Deflate, true, 8),
    )
    .unwrap();
    let store = MlocStore::open(&be, "d", "v").unwrap();
    let res = store
        .query_serial(&Query::values_where(500.0, 2500.0))
        .unwrap();
    let want: Vec<u64> = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| (500.0..2500.0).contains(&v))
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(res.positions(), want);
}

fn chunk_values(values: &[f64], grid: &ChunkGrid, chunk: usize) -> Vec<f64> {
    grid.chunk_linear_indices(chunk)
        .iter()
        .map(|&l| values[l as usize])
        .collect()
}

/// Chunks pushed in a scrambled order land in the same bytes as
/// in-order pushes: physical layout is always curve-rank order.
#[test]
fn out_of_order_push_is_byte_identical() {
    let values = field();
    let config = config(LevelOrder::Vms, CodecKind::Deflate, true, 2);
    let grid = ChunkGrid::new(config.shape.clone(), config.chunk_shape.clone());
    let n = grid.num_chunks();

    let build_in_order = |order: &[usize]| {
        let be = MemBackend::new();
        let mut b = StreamingBuilder::new(&be, "d", "v", &config, &values).unwrap();
        for &chunk in order {
            b.push_chunk(chunk, &chunk_values(&values, &grid, chunk))
                .unwrap();
        }
        b.finish().unwrap();
        all_files(&be)
    };

    let in_order: Vec<usize> = (0..n).collect();
    // Deterministic scramble: odd chunks backwards, then even chunks.
    let mut scrambled: Vec<usize> = (0..n).filter(|c| c % 2 == 1).rev().collect();
    scrambled.extend((0..n).filter(|c| c % 2 == 0));
    assert_ne!(in_order, scrambled);
    assert_eq!(
        build_in_order(&in_order),
        build_in_order(&scrambled),
        "push order leaked into the layout"
    );
}

/// Every StreamingBuilder error path, each leaving the builder usable.
#[test]
fn streaming_builder_error_paths() {
    let values = field();
    let config = config(LevelOrder::Vms, CodecKind::Deflate, true, 1);
    let grid = ChunkGrid::new(config.shape.clone(), config.chunk_shape.clone());
    let be = MemBackend::new();
    let mut b = StreamingBuilder::new(&be, "d", "v", &config, &values).unwrap();

    // Out-of-range chunk id.
    let err = b
        .push_chunk(grid.num_chunks(), &chunk_values(&values, &grid, 0))
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");

    // Wrong value count.
    let err = b.push_chunk(0, &values[..7]).unwrap_err();
    assert!(err.to_string().contains("expected"), "{err}");

    // Duplicate push.
    b.push_chunk(0, &chunk_values(&values, &grid, 0)).unwrap();
    let err = b
        .push_chunk(0, &chunk_values(&values, &grid, 0))
        .unwrap_err();
    assert!(err.to_string().contains("twice"), "{err}");

    // Failed pushes left exactly one chunk filed.
    assert_eq!(b.chunks_pushed(), 1);

    // finish() with missing chunks reports progress.
    let err = b.finish().unwrap_err();
    assert!(err.to_string().contains("chunks pushed"), "{err}");
    // A failed finish consumed the builder; no bin files were written.
    assert!(!be.exists("d/v/meta"));

    // A fresh builder completes despite the sibling's failures, and
    // the result matches a one-shot build with the same sample.
    let mut b2 = StreamingBuilder::new(&be, "d", "w", &config, &values).unwrap();
    for chunk in 0..grid.num_chunks() {
        b2.push_chunk(chunk, &chunk_values(&values, &grid, chunk))
            .unwrap();
    }
    let report = b2.finish().unwrap();
    assert!(be.exists("d/w/meta"));
    assert_eq!(
        report.per_bin_points.iter().sum::<u64>(),
        values.len() as u64
    );
}

/// The in-situ wave path through the Dataset API: batched pushes with
/// a worker pool register the variable and answer queries identically
/// to chunk-wise pushes.
#[test]
fn dataset_stream_waves_match_chunkwise() {
    let values = field();
    let be = MemBackend::new();
    let mut cfg = config(LevelOrder::Vms, CodecKind::Deflate, true, 4);
    cfg.build_threads = 4;
    let ds = Dataset::create(&be, "sim", cfg).unwrap();
    let sample: Vec<f64> = values.iter().step_by(13).copied().collect();

    // Chunk-wise.
    let mut one = ds.stream_variable("a", &sample).unwrap();
    let grid = one.grid().clone();
    for chunk in 0..grid.num_chunks() {
        one.push_chunk(chunk, &chunk_values(&values, &grid, chunk))
            .unwrap();
    }
    one.finish().unwrap();

    // Two waves, each batched.
    let mut batched = ds.stream_variable("b", &sample).unwrap();
    let half = grid.num_chunks() / 2;
    for wave in [0..half, half..grid.num_chunks()] {
        batched
            .push_chunks(wave.map(|c| (c, chunk_values(&values, &grid, c))).collect())
            .unwrap();
    }
    batched.finish().unwrap();

    let fa = all_files(&be);
    for (f, bytes) in fa.iter().filter(|(f, _)| f.starts_with("sim/a/")) {
        let twin = f.replace("sim/a/", "sim/b/");
        // meta embeds the variable name; bin data/index must match.
        if f.ends_with("meta") {
            continue;
        }
        assert_eq!(
            Some(bytes),
            fa.get(&twin),
            "file {f} differs between chunk-wise and batched stream"
        );
    }
    assert_eq!(ds.variables().unwrap(), vec!["a", "b"]);
}
