//! Behavioral tests for the decompressed-block cache: concurrency
//! safety under the threaded executor, warm-hit accounting, and the
//! zero-budget degradation guarantee.

use mloc::exec::ParallelExecutor;
use mloc::prelude::*;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::{CostModel, MemBackend};
use std::sync::Arc;

const SHAPE: [usize; 2] = [128, 128];

fn build(be: &MemBackend) -> Vec<f64> {
    let field = gts_like_2d(SHAPE[0], SHAPE[1], 29);
    let config = MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(vec![32, 32])
        .num_bins(12)
        .build();
    build_variable(be, "cb", "v", field.values(), &config).unwrap();
    field.into_values()
}

#[test]
fn concurrent_overlapping_queries_share_one_cache() {
    let be = MemBackend::new();
    let values = build(&be);

    // Overlapping workload; every thread runs all of it, so after the
    // first touch each block is a hit for everyone else.
    let mut gen = QueryGen::new(values.clone(), SHAPE.to_vec(), 13);
    let mut queries = Vec::new();
    for _ in 0..3 {
        let (lo, hi) = gen.value_constraint(0.2);
        queries.push(Query::values_where(lo, hi));
        queries.push(Query::region(lo, hi));
    }
    queries.push(Query::values_in(Region::new(vec![(16, 112), (0, 64)])));

    let plain = MlocStore::open(&be, "cb", "v").unwrap();
    let reference: Vec<QueryResult> = queries
        .iter()
        .map(|q| plain.query_serial(q).unwrap())
        .collect();

    let cache = Arc::new(BlockCache::with_budget_mb(128));
    std::thread::scope(|s| {
        for t in 0..6 {
            let cache = Arc::clone(&cache);
            let be = &be;
            let queries = &queries;
            let reference = &reference;
            s.spawn(move || {
                // Each thread drives the threaded (spmd) executor over
                // its own store view of the shared cache.
                let store = MlocStore::open(be, "cb", "v").unwrap().with_cache(cache);
                let exec = ParallelExecutor::new(4, CostModel::default()).threaded(true);
                for round in 0..3 {
                    for (i, q) in queries.iter().enumerate() {
                        let (res, _) = exec.execute(&store, q).unwrap();
                        assert_eq!(
                            &res, &reference[i],
                            "thread {t} round {round} query {i} diverged"
                        );
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert!(stats.hits > 0, "no hits across 6 threads x 3 rounds");
    assert!(stats.insertions > 0);
    assert!(stats.resident_bytes <= 128 << 20);
}

#[test]
fn warm_pass_is_all_hits_and_reads_nothing() {
    let be = MemBackend::new();
    build(&be);
    let store = MlocStore::open(&be, "cb", "v")
        .unwrap()
        .with_cache(Arc::new(BlockCache::with_budget_mb(64)));
    let q = Query::values_where(-1e18, 1e18);

    let (cold_res, cold) = store.query_with_metrics(&q).unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert!(cold.cache_misses > 0);
    assert!(cold.bytes_read > 0);

    let (warm_res, warm) = store.query_with_metrics(&q).unwrap();
    assert_eq!(warm_res, cold_res);
    assert_eq!(warm.cache_misses, 0, "warm pass still missed");
    assert_eq!(
        warm.cache_hits, cold.cache_misses,
        "every probe should now hit"
    );
    assert_eq!(warm.bytes_read, 0, "warm pass touched the backend");
    assert_eq!(
        warm.io_s, 0.0,
        "cached extents must be free in the simulator"
    );
    assert_eq!(warm.bytes_saved, cold.bytes_read);
}

#[test]
fn zero_budget_cache_degrades_to_uncached_metrics() {
    let be = MemBackend::new();
    let values = build(&be);
    let plain = MlocStore::open(&be, "cb", "v").unwrap();
    let cache = Arc::new(BlockCache::with_budget_bytes(0));
    let starved = MlocStore::open(&be, "cb", "v")
        .unwrap()
        .with_cache(Arc::clone(&cache));

    let mut gen = QueryGen::new(values, SHAPE.to_vec(), 31);
    for i in 0..4 {
        let (lo, hi) = gen.value_constraint(0.15);
        for q in [
            Query::region(lo, hi),
            Query::values_where(lo, hi),
            Query::values_in(Region::new(gen.region(0.1))),
        ] {
            let (r0, m0) = plain.query_with_metrics(&q).unwrap();
            let (r1, m1) = starved.query_with_metrics(&q).unwrap();
            assert_eq!(r1, r0, "query {i}: results diverged");
            // Every I/O-side metric must be exactly the uncached value;
            // only the probe counters may differ (misses are counted).
            assert_eq!(m1.bytes_read, m0.bytes_read, "query {i}");
            assert_eq!(m1.index_bytes, m0.index_bytes, "query {i}");
            assert_eq!(m1.data_bytes, m0.data_bytes, "query {i}");
            assert_eq!(m1.seeks, m0.seeks, "query {i}");
            assert_eq!(m1.io_s, m0.io_s, "query {i}: simulated io drifted");
            assert_eq!(m1.cache_hits, 0, "query {i}: hit with a 0-byte budget");
            assert_eq!(m1.bytes_saved, 0, "query {i}");
            assert!(
                m1.cache_misses > 0,
                "query {i}: probes should count as misses"
            );
        }
    }
    let stats = cache.stats();
    assert_eq!(
        stats.insertions, 0,
        "0-byte budget must reject every insert"
    );
    assert_eq!(stats.resident_bytes, 0);
    assert_eq!(stats.resident_blocks, 0);
    assert_eq!(stats.hits, 0);
}
