//! Crash-matrix suite: kill the build at **every** ordered durability
//! step — not a sample of them — and prove the recovery contract end
//! to end:
//!
//! * after `repair`, either the store is byte-identical to a clean
//!   build (possibly after rerunning the interrupted build), or the
//!   loss is reported loudly (`RepairReport::unrepairable`) — never a
//!   silently corrupt store;
//! * the same holds when the crashing append is *torn* at an arbitrary
//!   byte, for every append in the chain;
//! * dropped fsyncs (a device that lies) either lose only what repair
//!   can reconstruct, or surface as reported loss.
//!
//! The write-op census is asserted against the documented durability
//! grammar (catalog header → per-bin payload→sync→footer→sync → meta
//! → catalog registration), so a new write in the build path that
//! extends the chain shows up here as a failed census, forcing the
//! matrix to grow with it.

use mloc::prelude::*;
use mloc::repair::{fsck, repair};
use mloc::{Dataset, MlocStore};
use mloc_pfs::{CrashBackend, CrashPlan, DirBackend, MemBackend, ShardRouter, StorageBackend};
use std::sync::atomic::{AtomicUsize, Ordering};

const DS: &str = "cm";
const VAR: &str = "temp";
const CATALOG: &str = "cm/catalog";
const NUM_BINS: usize = 4;

fn config() -> MlocConfig {
    MlocConfig::builder(vec![16, 16])
        .chunk_shape(vec![8, 8])
        .num_bins(NUM_BINS)
        .build()
}

fn values() -> Vec<f64> {
    (0..256).map(|i| ((i * 37) % 101) as f64).collect()
}

/// The full build chain whose durability steps the matrix enumerates:
/// dataset creation (catalog header) plus one variable build.
/// `build_threads = 1` makes the write-op order deterministic, so op
/// index `k` means the same durability step in every replay.
fn build(be: &dyn StorageBackend) -> mloc::Result<()> {
    let mut ds = Dataset::create(be, DS, config())?;
    ds.set_build_threads(1);
    ds.add_variable(VAR, &values())?;
    Ok(())
}

/// Every physical copy of every file: replicated worlds compare per
/// shard, unreplicated worlds degrade to the plain file list.
fn snapshot(be: &dyn StorageBackend) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for f in be.list() {
        for r in 0..be.replica_count() {
            let len = be.len_replica(&f, r).unwrap();
            out.push((format!("{r}:{f}"), be.read_replica(&f, r, 0, len).unwrap()));
        }
    }
    out
}

/// Tier-1 query fingerprints (positions + value bits) over the store.
fn fingerprints(be: &dyn StorageBackend) -> Vec<(Vec<u64>, Vec<u64>)> {
    let store = MlocStore::open(be, DS, VAR).unwrap();
    [
        Query::region(f64::MIN, f64::MAX),
        Query::values_where(f64::MIN, f64::MAX),
        Query::values_where(20.0, 80.0),
    ]
    .iter()
    .map(|q| {
        let res = store.query_serial(q).unwrap();
        (
            res.positions().to_vec(),
            res.values()
                .map(|vs| vs.iter().map(|v| v.to_bits()).collect())
                .unwrap_or_default(),
        )
    })
    .collect()
}

/// Assert the census matches the documented durability grammar, and
/// return the 1-based indices of all append ops (the torn-write
/// sweep targets).
fn assert_census(log: &[(&'static str, String)]) -> Vec<u64> {
    // Catalog header: create, magic append, config append, sync.
    let expected_header = ["create", "append", "append", "sync"];
    for (i, kind) in expected_header.iter().enumerate() {
        assert_eq!(log[i], (*kind, CATALOG.to_string()), "header op {i}");
    }
    // Per bin: payload made durable before the footer commit marker,
    // for the data file then the index file.
    let mut i = expected_header.len();
    for bin in 0..NUM_BINS {
        for ext in ["dat", "idx"] {
            let file = format!("{DS}/{VAR}/bin{bin:04}.{ext}");
            for kind in ["create", "append", "sync", "append", "sync"] {
                assert_eq!(log[i], (kind, file.clone()), "bin {bin} {ext} op {i}");
                i += 1;
            }
        }
    }
    // Meta (the variable's commit marker), then the catalog
    // registration line, each synced.
    let meta = format!("{DS}/{VAR}/meta");
    for (kind, file) in [
        ("create", meta.clone()),
        ("append", meta.clone()),
        ("sync", meta),
        ("append", CATALOG.to_string()),
        ("sync", CATALOG.to_string()),
    ] {
        assert_eq!(log[i], (kind, file), "tail op {i}");
        i += 1;
    }
    assert_eq!(i, log.len(), "census has unexpected extra write ops");
    log.iter()
        .enumerate()
        .filter(|(_, (kind, _))| *kind == "append")
        .map(|(i, _)| i as u64 + 1)
        .collect()
}

/// The per-crash-point contract: repair either fully heals (then a
/// rerun of any rolled-back build converges to the clean bytes), or
/// reports the loss — which in a single-copy world can only be the
/// catalog header, before any data was durable.
fn heal_and_compare(
    durable: &dyn StorageBackend,
    tag: &str,
    want_files: &[(String, Vec<u8>)],
    want_results: &[(Vec<u64>, Vec<u64>)],
) {
    let report = repair(durable, DS).unwrap();
    if report.is_healthy() {
        let post = fsck(durable, DS).unwrap();
        assert!(post.is_clean(), "{tag}: post-repair fsck dirty: {post}");
        let ds = Dataset::open(durable, DS).unwrap_or_else(|e| panic!("{tag}: open: {e}"));
        if !ds.has_variable(VAR) {
            // The crash predated the variable's commit point and
            // repair rolled the debris back: the build reruns cleanly.
            let mut ds = Dataset::open(durable, DS).unwrap();
            ds.set_build_threads(1);
            ds.add_variable(VAR, &values())
                .unwrap_or_else(|e| panic!("{tag}: rebuild: {e}"));
        }
    } else {
        // Reported loss: only legal before anything was committed —
        // the catalog header itself is unreconstructable without a
        // committed meta. Never a committed variable.
        assert!(
            report.unrepairable.iter().all(|f| f == CATALOG),
            "{tag}: unexpected unrepairable set: {report}"
        );
        assert!(
            report.fsck.committed.is_empty() && report.fsck.unlisted.is_empty(),
            "{tag}: committed data reported unrepairable: {report}"
        );
        for f in durable.list() {
            durable.remove(&f).unwrap();
        }
        build(durable).unwrap_or_else(|e| panic!("{tag}: recreate: {e}"));
    }
    assert_eq!(
        snapshot(durable),
        want_files,
        "{tag}: recovered store bytes diverged from the clean build"
    );
    assert_eq!(
        fingerprints(durable),
        want_results,
        "{tag}: query results diverged from the clean build"
    );
}

/// A factory of fresh, empty backends for one scenario world.
type Fresh<'a> = &'a dyn Fn() -> Box<dyn StorageBackend>;

static WORLD_ID: AtomicUsize = AtomicUsize::new(0);

struct DirWorld {
    root: std::path::PathBuf,
    next: AtomicUsize,
}

impl DirWorld {
    fn new() -> Self {
        let root = std::env::temp_dir().join(format!(
            "mloc-crash-matrix-{}-{}",
            std::process::id(),
            WORLD_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        DirWorld {
            root,
            next: AtomicUsize::new(0),
        }
    }

    fn fresh(&self) -> Box<dyn StorageBackend> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        Box::new(DirBackend::new(self.root.join(format!("w{i}"))).unwrap())
    }
}

impl Drop for DirWorld {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Census the chain, then crash at every op index `1..=N`.
fn sweep_every_crash_point(fresh: Fresh) {
    let clean = fresh();
    build(&*clean).unwrap();
    let want_files = snapshot(&*clean);
    let want_results = fingerprints(&*clean);

    let cb = CrashBackend::new(fresh(), CrashPlan::none());
    build(&cb).unwrap();
    assert!(!cb.crashed());
    let log = cb.op_log();
    assert_census(&log);
    let total = cb.write_ops();

    for k in 1..=total {
        let cb = CrashBackend::new(fresh(), CrashPlan::at(k));
        let (kind, file) = &log[k as usize - 1];
        let tag = format!("crash at op {k}/{total} ({kind} {file})");
        assert!(build(&cb).is_err(), "{tag}: build survived its crash");
        assert!(cb.crashed(), "{tag}: crash never fired");
        heal_and_compare(&*cb.into_inner(), &tag, &want_files, &want_results);
    }
}

#[test]
fn every_crash_point_repairs_to_byte_identical_state() {
    sweep_every_crash_point(&|| Box::new(MemBackend::new()));
}

#[test]
fn crash_matrix_holds_on_the_real_directory_backend() {
    let world = DirWorld::new();
    sweep_every_crash_point(&|| world.fresh());
}

#[test]
fn crash_matrix_holds_through_a_replicated_shard_router() {
    // The crash overlay sits above the router, so both copies take the
    // same damage — what this adds is repair running its rollback,
    // reattach and catalog paths through replica-aware fan-out.
    sweep_every_crash_point(&|| {
        Box::new(
            ShardRouter::replicated(
                (0..3).map(|_| Box::new(MemBackend::new()) as _).collect(),
                2,
            )
            .unwrap(),
        )
    });
}

/// Every append in the chain, torn at byte 0 (append fully lost but
/// earlier volatile bytes flush), 1, and 9 (mid-payload / mid-footer).
#[test]
fn every_torn_append_repairs_to_byte_identical_state() {
    let clean = MemBackend::new();
    build(&clean).unwrap();
    let want_files = snapshot(&clean);
    let want_results = fingerprints(&clean);

    let cb = CrashBackend::new(MemBackend::new(), CrashPlan::none());
    build(&cb).unwrap();
    let log = cb.op_log();
    let appends = assert_census(&log);
    assert!(!appends.is_empty());

    for &k in &appends {
        for keep in [0u64, 1, 9] {
            let cb = CrashBackend::new(MemBackend::new(), CrashPlan::torn_at(k, keep));
            let (_, file) = &log[k as usize - 1];
            let tag = format!("torn append op {k} ({file}) keep {keep}");
            assert!(build(&cb).is_err(), "{tag}: build survived its crash");
            heal_and_compare(&cb.into_inner(), &tag, &want_files, &want_results);
        }
    }
}

/// A device that acknowledges the catalog's fsyncs without flushing:
/// power loss erases the catalog, but every variable's meta embeds the
/// build config, so repair reconstructs the registration from the
/// committed metas alone.
#[test]
fn dropped_catalog_sync_is_reconstructed_from_meta() {
    let mut plan = CrashPlan::none();
    plan.drop_syncs.push("catalog".to_string());
    let cb = CrashBackend::new(MemBackend::new(), plan);
    build(&cb).unwrap();
    cb.power_cut();
    let durable = cb.into_inner();
    assert!(!durable.exists(CATALOG), "dropped syncs still flushed");

    let f = fsck(&durable, DS).unwrap();
    assert!(!f.catalog_ok, "{f}");
    let r = repair(&durable, DS).unwrap();
    assert!(r.is_healthy(), "{r}");
    assert!(r.catalog_rewritten);
    let ds = Dataset::open(&durable, DS).unwrap();
    assert_eq!(ds.variables().unwrap(), vec![VAR.to_string()]);
    assert!(fsck(&durable, DS).unwrap().is_clean());

    // The reconstructed store answers byte-identically to a clean one.
    let clean = MemBackend::new();
    build(&clean).unwrap();
    assert_eq!(fingerprints(&durable), fingerprints(&clean));
}

/// A device that drops one bin's data-file fsyncs: after power loss
/// the file is simply gone on a single-copy store. The loss must be
/// loud at every layer — fsck finding, unrepairable report, failing
/// values query — never a silently shrunken answer.
#[test]
fn dropped_data_sync_is_loud_loss_on_a_single_copy() {
    let lost = format!("{DS}/{VAR}/bin0002.dat");
    let mut plan = CrashPlan::none();
    plan.drop_syncs.push("bin0002.dat".to_string());
    let cb = CrashBackend::new(MemBackend::new(), plan);
    build(&cb).unwrap();
    cb.power_cut();
    let durable = cb.into_inner();
    assert!(!durable.exists(&lost));

    let f = fsck(&durable, DS).unwrap();
    assert!(!f.is_clean());
    assert!(
        f.findings.iter().any(|d| d.file == lost),
        "missing file not reported: {f}"
    );
    let r = repair(&durable, DS).unwrap();
    assert!(!r.is_healthy(), "loss vanished: {r}");
    assert_eq!(r.unrepairable, vec![lost]);

    // The variable stays committed (never rolled back), the values
    // query fails loudly, and the index-only query still works.
    let store = MlocStore::open(&durable, DS, VAR).unwrap();
    assert!(store
        .query_serial(&Query::values_where(f64::MIN, f64::MAX))
        .is_err());
    assert_eq!(
        store
            .query_serial(&Query::region(f64::MIN, f64::MAX))
            .unwrap()
            .len(),
        256
    );
}

/// The same lying device under replication: the copies live behind the
/// router and the overlay drops the file before the fan-out, so even
/// R = 2 cannot save it — but repair still reports rather than hides
/// it. (Replica copies help when damage hits one shard, which the
/// repair unit tests and the shard-kill differential cover.)
#[test]
fn dropped_meta_sync_rolls_back_cleanly() {
    // Meta never durable + catalog line durable would break the chain;
    // but the catalog registration happens *after* the meta sync, so a
    // lying meta sync plus power cut leaves a listed variable with no
    // meta — repair must reattach nothing and report the meta as the
    // casualty of a committed variable.
    let mut plan = CrashPlan::none();
    plan.drop_syncs.push("meta".to_string());
    let cb = CrashBackend::new(MemBackend::new(), plan);
    build(&cb).unwrap();
    cb.power_cut();
    let durable = cb.into_inner();
    assert!(!durable.exists(&format!("{DS}/{VAR}/meta")));

    let r = repair(&durable, DS).unwrap();
    assert!(!r.is_healthy(), "lost meta vanished: {r}");
    assert_eq!(r.unrepairable, vec![format!("{DS}/{VAR}/meta")]);
}
