//! Cross-system equivalence: MLOC and every comparator engine answer
//! identical random workloads with identical results.

use mloc::prelude::*;
use mloc_baselines::{FastBit, QueryEngine, SciDb, SeqScan};
use mloc_datagen::{s3d_like_3d, QueryGen};
use mloc_pfs::MemBackend;

#[test]
fn all_engines_agree_on_random_workloads() {
    let shape = vec![48, 48, 48];
    let field = s3d_like_3d(48, 48, 48, 77);
    let values = field.values();
    let be = MemBackend::new();

    let config = MlocConfig::builder(shape.clone())
        .chunk_shape(vec![16, 16, 16])
        .num_bins(12)
        .build();
    build_variable(&be, "xs", "v", values, &config).unwrap();
    let store = MlocStore::open(&be, "xs", "v").unwrap();

    let scan = SeqScan::build(&be, "xs", values, shape.clone()).unwrap();
    let fb = FastBit::build(&be, "xs", values, shape.clone(), 64).unwrap();
    let db = SciDb::build(&be, "xs", values, shape.clone(), vec![16, 16, 16], 1)
        .unwrap()
        .with_chunk_overhead(0.0);

    let mut gen = QueryGen::new(values.to_vec(), shape.clone(), 5);
    for i in 0..8 {
        // Region (VC) queries.
        let (lo, hi) = gen.value_constraint(0.05 + 0.02 * i as f64);
        let m = store.query_serial(&Query::region(lo, hi)).unwrap();
        let s = scan.region_query(lo, hi).unwrap();
        let f = fb.region_query(lo, hi).unwrap();
        let d = db.region_query(lo, hi).unwrap();
        assert_eq!(m.positions(), &s.positions[..], "query {i}: mloc vs scan");
        assert_eq!(s.positions, f.positions, "query {i}: scan vs fastbit");
        assert_eq!(s.positions, d.positions, "query {i}: scan vs scidb");

        // Value (SC) queries.
        let region = Region::new(gen.region(0.02 + 0.01 * i as f64));
        let m = store
            .query_serial(&Query::values_in(region.clone()))
            .unwrap();
        let s = scan.value_query(&region).unwrap();
        let f = fb.value_query(&region).unwrap();
        let d = db.value_query(&region).unwrap();
        assert_eq!(m.positions(), &s.positions[..], "query {i}: positions");
        assert_eq!(
            m.values().unwrap(),
            &s.values.unwrap()[..],
            "query {i}: values"
        );
        assert_eq!(s.positions, f.positions);
        assert_eq!(s.positions, d.positions);
        assert_eq!(f.values.unwrap(), d.values.unwrap());
    }
}

#[test]
fn combined_constraints_agree_with_naive() {
    let shape = vec![64, 64];
    let field = mloc_datagen::gts_like_2d(64, 64, 5);
    let values = field.values();
    let be = MemBackend::new();
    let config = MlocConfig::builder(shape.clone())
        .chunk_shape(vec![16, 16])
        .num_bins(8)
        .build();
    build_variable(&be, "cc", "v", values, &config).unwrap();
    let store = MlocStore::open(&be, "cc", "v").unwrap();

    let mut gen = QueryGen::new(values.to_vec(), shape.clone(), 9);
    for _ in 0..10 {
        let (lo, hi) = gen.value_constraint(0.3);
        let region = Region::new(gen.region(0.2));
        let q = Query::values_where(lo, hi).with_region(region.clone());
        let res = store.query_serial(&q).unwrap();

        let mut want: Vec<(u64, f64)> = Vec::new();
        for r in region.ranges()[0].0..region.ranges()[0].1 {
            for c in region.ranges()[1].0..region.ranges()[1].1 {
                let lin = (r * 64 + c) as u64;
                let v = values[lin as usize];
                if v >= lo && v < hi {
                    want.push((lin, v));
                }
            }
        }
        want.sort_unstable_by_key(|&(p, _)| p);
        assert_eq!(
            res.positions(),
            want.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
        assert_eq!(
            res.values().unwrap(),
            want.iter().map(|&(_, v)| v).collect::<Vec<_>>()
        );
    }
}
