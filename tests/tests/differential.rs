//! Differential tests for the execution modes: serial, threaded,
//! cached, and cached+threaded must answer byte-identically — to each
//! other and to the sequential-scan baseline. Lossless layouts are
//! exact; ISABELA values stay within the configured error bound.

use mloc::exec::ParallelExecutor;
use mloc::prelude::*;
use mloc_baselines::{QueryEngine, SeqScan};
use mloc_compress::CodecKind;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::{CostModel, MemBackend};
use std::sync::Arc;

const SHAPE: [usize; 2] = [96, 96];

fn build(be: &MemBackend, codec: CodecKind) -> Vec<f64> {
    let field = gts_like_2d(SHAPE[0], SHAPE[1], 41);
    let config = MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(vec![24, 24])
        .num_bins(10)
        .codec(codec)
        .build();
    build_variable(be, "diff", "v", field.values(), &config).unwrap();
    field.into_values()
}

/// A mixed workload: VC, SC and combined queries with overlap, so the
/// cached modes see both cold and warm blocks.
fn workload(values: &[f64]) -> Vec<Query> {
    let mut gen = QueryGen::new(values.to_vec(), SHAPE.to_vec(), 11);
    let mut queries = Vec::new();
    for i in 0..4 {
        let (lo, hi) = gen.value_constraint(0.08 + 0.03 * i as f64);
        queries.push(Query::region(lo, hi));
        queries.push(Query::values_where(lo, hi));
        let region = Region::new(gen.region(0.1));
        queries.push(Query::values_in(region.clone()));
        queries.push(Query::values_where(lo, hi).with_region(region));
    }
    queries
}

fn bitwise_eq(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.positions(), b.positions(), "{ctx}: positions");
    match (a.values(), b.values()) {
        (None, None) => {}
        (Some(av), Some(bv)) => {
            assert_eq!(av.len(), bv.len(), "{ctx}: value count");
            for (x, y) in av.iter().zip(bv) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: value bits");
            }
        }
        _ => panic!("{ctx}: one side has values, the other does not"),
    }
}

#[test]
fn cached_and_threaded_modes_are_byte_identical() {
    let be = MemBackend::new();
    let values = build(&be, CodecKind::Deflate);
    let plain = MlocStore::open(&be, "diff", "v").unwrap();
    let cached = MlocStore::open(&be, "diff", "v")
        .unwrap()
        .with_cache(Arc::new(BlockCache::with_budget_mb(64)));

    let threaded = ParallelExecutor::new(4, CostModel::default()).threaded(true);
    for (i, q) in workload(&values).iter().enumerate() {
        let reference = plain.query_serial(q).unwrap();
        // Threaded, no cache.
        let (t, _) = threaded.execute(&plain, q).unwrap();
        bitwise_eq(&t, &reference, &format!("query {i}: threaded"));
        // Serial with cache: cold pass then warm pass.
        let (c1, _) = cached.query_with_metrics(q).unwrap();
        bitwise_eq(&c1, &reference, &format!("query {i}: cached cold"));
        let (c2, m2) = cached.query_with_metrics(q).unwrap();
        bitwise_eq(&c2, &reference, &format!("query {i}: cached warm"));
        assert!(m2.cache_hits > 0, "query {i}: warm pass had no hits");
        // Threaded with cache (warm by now).
        let (tc, _) = threaded.execute(&cached, q).unwrap();
        bitwise_eq(&tc, &reference, &format!("query {i}: cached threaded"));
    }
}

#[test]
fn lossless_modes_match_seqscan_exactly() {
    for codec in [CodecKind::Raw, CodecKind::Deflate, CodecKind::Fpc] {
        let be = MemBackend::new();
        let values = build(&be, codec);
        let scan = SeqScan::build(&be, "diff", &values, SHAPE.to_vec()).unwrap();
        let cached = MlocStore::open(&be, "diff", "v")
            .unwrap()
            .with_cache(Arc::new(BlockCache::with_budget_mb(64)));
        for pass in 0..2 {
            // Same queries both passes: pass 1 is served from cache.
            let mut gen = QueryGen::new(values.clone(), SHAPE.to_vec(), 9);
            for i in 0..4 {
                let (lo, hi) = gen.value_constraint(0.1 + 0.04 * i as f64);
                let m = cached.query_serial(&Query::region(lo, hi)).unwrap();
                let s = scan.region_query(lo, hi).unwrap();
                assert_eq!(
                    m.positions(),
                    &s.positions[..],
                    "{codec:?} pass {pass} query {i}: region positions"
                );
                let region = Region::new(gen.region(0.08));
                let m = cached
                    .query_serial(&Query::values_in(region.clone()))
                    .unwrap();
                let s = scan.value_query(&region).unwrap();
                assert_eq!(m.positions(), &s.positions[..]);
                let sv = s.values.unwrap();
                let mv = m.values().unwrap();
                for (x, y) in mv.iter().zip(&sv) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{codec:?} pass {pass} query {i}: lossless value drift"
                    );
                }
            }
        }
    }
}

#[test]
fn isabela_cached_values_stay_within_bound() {
    let bound = 0.01;
    let be = MemBackend::new();
    let values = build(&be, CodecKind::Isabela { error_bound: bound });
    let scan = SeqScan::build(&be, "diff", &values, SHAPE.to_vec()).unwrap();
    let plain = MlocStore::open(&be, "diff", "v").unwrap();
    let cached = MlocStore::open(&be, "diff", "v")
        .unwrap()
        .with_cache(Arc::new(BlockCache::with_budget_mb(64)));

    let mut gen = QueryGen::new(values.clone(), SHAPE.to_vec(), 17);
    for i in 0..4 {
        // SC-only value retrieval: positions are exact even under a
        // lossy codec; values carry the codec's relative error.
        let region = Region::new(gen.region(0.1));
        let q = Query::values_in(region.clone());
        let reference = plain.query_serial(&q).unwrap();
        let truth = scan.value_query(&region).unwrap();
        assert_eq!(
            reference.positions(),
            &truth.positions[..],
            "query {i}: positions"
        );
        let tv = truth.values.unwrap();
        for (x, y) in reference.values().unwrap().iter().zip(&tv) {
            let tol = bound * y.abs().max(1e-300);
            assert!(
                (x - y).abs() <= tol * 1.0000001,
                "query {i}: |{x} - {y}| exceeds isabela bound {bound}"
            );
        }
        // The cache must reproduce the *decompressed* (lossy) values
        // bit-for-bit, cold and warm.
        let (c1, _) = cached.query_with_metrics(&q).unwrap();
        bitwise_eq(&c1, &reference, &format!("query {i}: isabela cold"));
        let (c2, m2) = cached.query_with_metrics(&q).unwrap();
        bitwise_eq(&c2, &reference, &format!("query {i}: isabela warm"));
        assert!(m2.cache_hits > 0);
    }
}
