//! End-to-end: build on real files, reopen, query, and cross-check
//! against a naive scan — for every codec variant and level order.

use mloc::prelude::*;
use mloc_compress::CodecKind;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{DirBackend, MemBackend, StorageBackend};

fn naive_region(values: &[f64], lo: f64, hi: f64) -> Vec<u64> {
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v >= lo && v < hi)
        .map(|(i, _)| i as u64)
        .collect()
}

fn check_variant(backend: &dyn StorageBackend, codec: CodecKind, order: LevelOrder) {
    let field = gts_like_2d(128, 128, 42);
    let values = field.values();
    let config = MlocConfig::builder(vec![128, 128])
        .chunk_shape(vec![32, 32])
        .num_bins(16)
        .codec(codec)
        .level_order(order)
        .build();
    let var = format!("{}_{}", codec.name(), order.name());
    build_variable(backend, "e2e", &var, values, &config).unwrap();
    let store = MlocStore::open(backend, "e2e", &var).unwrap();

    // Region query equivalence (lossless codecs answer exactly; the
    // lossy codec classifies within its error bound, checked below).
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = sorted[sorted.len() / 4];
    let hi = sorted[sorted.len() / 2];
    let res = store.query_serial(&Query::region(lo, hi)).unwrap();
    if !codec.is_lossy() {
        assert_eq!(
            res.positions(),
            naive_region(values, lo, hi),
            "{var} region"
        );
    } else {
        // Lossy codec: membership can flip only for values within the
        // error bound of a constraint edge.
        let eps = 0.001;
        let naive: std::collections::HashSet<u64> =
            naive_region(values, lo, hi).into_iter().collect();
        let got: std::collections::HashSet<u64> = res.positions().iter().copied().collect();
        for p in naive.symmetric_difference(&got) {
            let v = values[*p as usize];
            let near_edge = ((v - lo).abs() <= eps * v.abs().max(1.0))
                || ((v - hi).abs() <= eps * v.abs().max(1.0));
            assert!(
                near_edge,
                "{var}: point {p} (value {v}) flipped far from edges"
            );
        }
    }

    // Value query equivalence within codec tolerance.
    let region = Region::new(vec![(10, 90), (20, 100)]);
    let res = store.query_serial(&Query::values_in(region)).unwrap();
    assert_eq!(res.len(), 80 * 80, "{var} value count");
    for (&p, &v) in res.positions().iter().zip(res.values().unwrap()) {
        let exact = values[p as usize];
        if codec.is_lossy() {
            let tol = 0.001 * exact.abs().max(1e-6) * (1.0 + 1e-6);
            assert!((v - exact).abs() <= tol, "{var}: {v} vs {exact}");
        } else {
            assert_eq!(v.to_bits(), exact.to_bits(), "{var}: {v} vs {exact}");
        }
    }
}

#[test]
fn all_codecs_and_orders_on_memory_backend() {
    let be = MemBackend::new();
    for codec in [
        CodecKind::Raw,
        CodecKind::Deflate,
        CodecKind::Isobar,
        CodecKind::Fpc,
        CodecKind::Isabela { error_bound: 0.001 },
    ] {
        for order in [LevelOrder::Vms, LevelOrder::Vsm] {
            check_variant(&be, codec, order);
        }
    }
}

#[test]
fn deflate_variant_on_real_files() {
    let root = std::env::temp_dir().join(format!("mloc-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let be = DirBackend::new(&root).unwrap();
    check_variant(&be, CodecKind::Deflate, LevelOrder::Vms);
    // Files genuinely exist on disk.
    assert!(be.list().iter().any(|f| f.ends_with(".dat")));
    assert!(be.list().iter().any(|f| f.ends_with(".idx")));
    assert!(be.list().iter().any(|f| f.ends_with("meta")));
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn reopening_gives_identical_answers() {
    let be = MemBackend::new();
    let field = gts_like_2d(64, 64, 3);
    let config = MlocConfig::builder(vec![64, 64])
        .chunk_shape(vec![16, 16])
        .num_bins(8)
        .build();
    build_variable(&be, "ds", "v", field.values(), &config).unwrap();
    let q = Query::values_where(0.0, 1e6);
    let first = MlocStore::open(&be, "ds", "v")
        .unwrap()
        .query_serial(&q)
        .unwrap();
    let second = MlocStore::open(&be, "ds", "v")
        .unwrap()
        .query_serial(&q)
        .unwrap();
    assert_eq!(first, second);
}

#[test]
fn corrupted_metadata_is_rejected() {
    let be = MemBackend::new();
    let field = gts_like_2d(64, 64, 3);
    let config = MlocConfig::builder(vec![64, 64])
        .chunk_shape(vec![16, 16])
        .num_bins(8)
        .build();
    build_variable(&be, "ds", "v", field.values(), &config).unwrap();

    // Truncate the meta file.
    let meta = be.read("ds/v/meta", 0, 10).unwrap();
    be.create("ds/v/meta").unwrap();
    be.append("ds/v/meta", &meta).unwrap();
    assert!(MlocStore::open(&be, "ds", "v").is_err());
}

#[test]
fn corrupted_index_is_detected_at_query_time() {
    let be = MemBackend::new();
    let field = gts_like_2d(64, 64, 3);
    let config = MlocConfig::builder(vec![64, 64])
        .chunk_shape(vec![16, 16])
        .num_bins(4)
        .build();
    build_variable(&be, "ds", "v", field.values(), &config).unwrap();

    // Flip the magic of one bin's index.
    let idx = be
        .read("ds/v/bin0001.idx", 0, be.len("ds/v/bin0001.idx").unwrap())
        .unwrap();
    let mut bad = idx.clone();
    bad[0] ^= 0xFF;
    be.create("ds/v/bin0001.idx").unwrap();
    be.append("ds/v/bin0001.idx", &bad).unwrap();

    let store = MlocStore::open(&be, "ds", "v").unwrap();
    // A query touching every bin must surface the corruption.
    assert!(store
        .query_serial(&Query::values_where(f64::MIN, f64::MAX))
        .is_err());
}
