//! Failure injection: randomly corrupt on-disk bytes and verify that
//! queries either fail cleanly or still return correct results —
//! never panic, never silently return wrong answers for lossless
//! layouts with checksummed payloads.

use mloc::prelude::*;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{MemBackend, StorageBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build<'a>(be: &'a MemBackend) -> (Vec<f64>, MlocStore<'a>) {
    let field = gts_like_2d(64, 64, 13);
    let config = MlocConfig::builder(vec![64, 64])
        .chunk_shape(vec![16, 16])
        .num_bins(6)
        .build();
    build_variable(be, "fz", "v", field.values(), &config).unwrap();
    (field.into_values(), MlocStore::open(be, "fz", "v").unwrap())
}

fn corrupt_one_byte(be: &MemBackend, file: &str, pos: u64, mask: u8) {
    let len = be.len(file).unwrap();
    let mut data = be.read(file, 0, len).unwrap();
    data[pos as usize] ^= mask;
    be.create(file).unwrap();
    be.append(file, &data).unwrap();
}

/// A query touching everything: exercises every bin and chunk.
fn full_query(store: &MlocStore<'_>) -> mloc::Result<QueryResult> {
    store.query_serial(&Query::values_where(f64::MIN, f64::MAX))
}

#[test]
fn corrupted_data_files_never_panic_or_lie() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..30 {
        let be = MemBackend::new();
        let (values, _) = build(&be);
        // Pick a random data file and flip a random byte.
        let files: Vec<String> = be
            .list()
            .into_iter()
            .filter(|f| f.ends_with(".dat") && be.len(f).unwrap() > 0)
            .collect();
        let file = &files[rng.random_range(0..files.len())];
        let pos = rng.random_range(0..be.len(file).unwrap());
        let mask = 1u8 << rng.random_range(0..8);
        corrupt_one_byte(&be, file, pos, mask);

        let store = MlocStore::open(&be, "fz", "v").unwrap();
        match store.query_with_metrics(&Query::values_where(f64::MIN, f64::MAX)) {
            // Clean failure is one expected outcome.
            Err(_) => {}
            // The query may also complete: either untouched (the flip
            // landed in an extent this query never read) or gracefully
            // degraded when a non-base PLoD byte group was damaged. In
            // both cases positions must be exact, and values must be
            // bit-exact unless degradation was *reported* — silently
            // wrong answers are never acceptable.
            Ok((res, metrics)) => {
                assert_eq!(res.len(), values.len(), "trial {trial}: wrong cardinality");
                let bound = metrics.degradation.error_bound();
                for (&p, &v) in res.positions().iter().zip(res.values().unwrap()) {
                    let truth = values[p as usize];
                    if v.to_bits() == truth.to_bits() {
                        continue;
                    }
                    assert!(
                        metrics.degradation.is_degraded(),
                        "trial {trial}: silent corruption at {p}: {v} != {truth}"
                    );
                    let rel = if truth != 0.0 {
                        ((v - truth) / truth).abs()
                    } else {
                        v.abs()
                    };
                    assert!(
                        rel <= bound * (1.0 + 1e-9),
                        "trial {trial}: degraded value at {p} outside reported \
                         bound: {v} vs {truth} (rel {rel:e}, bound {bound:e})"
                    );
                }
            }
        }
    }
}

#[test]
fn corrupted_index_files_never_panic() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..30 {
        let be = MemBackend::new();
        build(&be);
        let files: Vec<String> = be
            .list()
            .into_iter()
            .filter(|f| f.ends_with(".idx"))
            .collect();
        let file = &files[rng.random_range(0..files.len())];
        let pos = rng.random_range(0..be.len(file).unwrap());
        corrupt_one_byte(&be, file, pos, 1u8 << rng.random_range(0..8));

        let store = MlocStore::open(&be, "fz", "v").unwrap();
        // Any outcome except a panic is acceptable for index bitmaps
        // (positions are not checksummed); the engine's structural
        // validation catches offset/length corruption.
        let _ = full_query(&store);
        let _ = store.query_serial(&Query::region(0.0, 1e6));
    }
}

#[test]
fn truncated_files_fail_cleanly() {
    let be = MemBackend::new();
    build(&be);
    for file in be.list() {
        if !(file.ends_with(".dat") || file.ends_with(".idx")) {
            continue;
        }
        let len = be.len(&file).unwrap();
        if len < 2 {
            continue;
        }
        let data = be.read(&file, 0, len / 2).unwrap();
        be.create(&file).unwrap();
        be.append(&file, &data).unwrap();
    }
    let store = MlocStore::open(&be, "fz", "v").unwrap();
    assert!(full_query(&store).is_err());
}

#[test]
fn missing_bin_file_fails_cleanly() {
    let be = MemBackend::new();
    build(&be);
    // Simulate a lost subfile by replacing it with an empty one.
    be.create("fz/v/bin0002.dat").unwrap();
    let store = MlocStore::open(&be, "fz", "v").unwrap();
    assert!(full_query(&store).is_err());
}
