//! Fault-matrix differential suite: replay the same queries under a
//! deterministic fault schedule and prove the three robustness
//! contracts end to end.
//!
//! * Transient faults + retries ⇒ results byte-identical to the
//!   fault-free run, in serial, threaded, and cached modes.
//! * Corruption (bit flips, lost files, torn writes) ⇒ *detected*:
//!   the query fails with extent context, or completes gracefully
//!   degraded with the loss reported. Never silently wrong.
//! * `verify` pinpoints the damaged extents offline.
//!
//! Every scenario runs in **two worlds**: the in-memory backend and
//! the real directory backend. The fault injector hashes logical file
//! names, so the schedules are identical in both — any divergence is a
//! real-backend bug, not a test artifact.

use std::sync::atomic::{AtomicUsize, Ordering};

use mloc::prelude::*;
use mloc::{verify_variable, MlocError, MlocStore, QueryMetrics, QueryResult};
use mloc_datagen::gts_like_2d;
use mloc_pfs::{
    CostModel, DirBackend, FaultBackend, FaultPlan, MemBackend, RetryPolicy, StorageBackend,
};
use mloc_serve::{QueryServer, ServeConfig, ServeError, SessionSpec};

const DS: &str = "fm";
const VAR: &str = "v";

/// A factory of fresh, empty backends for one scenario world.
type Fresh<'a> = &'a dyn Fn() -> Box<dyn StorageBackend>;

/// On-disk world: every `fresh()` is a new subdirectory so scenarios
/// never see each other's files, exactly like a new `MemBackend`.
struct DirWorld {
    root: std::path::PathBuf,
    next: AtomicUsize,
}

static WORLD_ID: AtomicUsize = AtomicUsize::new(0);

impl DirWorld {
    fn new() -> Self {
        let root = std::env::temp_dir().join(format!(
            "mloc-fault-matrix-{}-{}",
            std::process::id(),
            WORLD_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        DirWorld {
            root,
            next: AtomicUsize::new(0),
        }
    }

    fn fresh(&self) -> Box<dyn StorageBackend> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        Box::new(DirBackend::new(self.root.join(format!("w{i}"))).unwrap())
    }
}

impl Drop for DirWorld {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Run one scenario body against the memory world and the real
/// directory world.
fn for_both_worlds(body: impl Fn(Fresh)) {
    body(&|| Box::new(MemBackend::new()));
    let world = DirWorld::new();
    body(&|| world.fresh());
}

fn build_into(be: &impl StorageBackend) -> Vec<f64> {
    let field = gts_like_2d(64, 64, 17);
    let config = MlocConfig::builder(vec![64, 64])
        .chunk_shape(vec![16, 16])
        .num_bins(6)
        .build();
    build_variable(be, DS, VAR, field.values(), &config).unwrap();
    field.into_values()
}

/// Open the store, retrying transient faults the way a patient caller
/// would (attempt counts accumulate inside the FaultBackend, so the
/// schedule eventually lets the read through).
fn open_retrying<'a>(be: &'a dyn StorageBackend) -> mloc::Result<MlocStore<'a>> {
    let mut attempts = 0;
    loop {
        match MlocStore::open(be, DS, VAR) {
            Err(MlocError::Pfs(e)) if e.is_transient() && attempts < 64 => attempts += 1,
            other => return other,
        }
    }
}

fn full_values_query() -> Query {
    Query::values_where(f64::MIN, f64::MAX)
}

fn fingerprint(res: &QueryResult) -> (Vec<u64>, Vec<u64>) {
    (
        res.positions().to_vec(),
        res.values()
            .map(|vs| vs.iter().map(|v| v.to_bits()).collect())
            .unwrap_or_default(),
    )
}

/// Check a fault-run outcome against the baseline: identical, or
/// degraded within the *reported* error bound. Anything else is a
/// silent-corruption failure.
fn assert_not_silently_wrong(
    tag: &str,
    baseline: &QueryResult,
    res: &QueryResult,
    metrics: &QueryMetrics,
) {
    assert_eq!(
        res.positions(),
        baseline.positions(),
        "{tag}: positions drifted"
    );
    let bound = metrics.degradation.error_bound();
    let base_vals = baseline.values().unwrap();
    for (i, (&got, &want)) in res
        .values()
        .unwrap()
        .iter()
        .zip(base_vals.iter())
        .enumerate()
    {
        if got.to_bits() == want.to_bits() {
            continue;
        }
        assert!(
            metrics.degradation.is_degraded(),
            "{tag}: silent corruption at result {i}: {got} != {want}"
        );
        let rel = if want != 0.0 {
            ((got - want) / want).abs()
        } else {
            got.abs()
        };
        assert!(
            rel <= bound * (1.0 + 1e-9),
            "{tag}: degraded value outside reported bound: {got} vs {want} (rel {rel:e}, bound {bound:e})"
        );
    }
}

fn transient_faults_with_retry_are_byte_identical_in(fresh: Fresh) {
    let clean = fresh();
    build_into(&clean);
    let clean_store = MlocStore::open(&clean, DS, VAR).unwrap();
    let q = full_values_query();
    let baseline = clean_store.query_serial(&q).unwrap();
    let want = fingerprint(&baseline);

    let mut saw_retries = false;
    for seed in [1u64, 7, 23] {
        let fb = FaultBackend::new(fresh(), FaultPlan::transient(seed, 0.4, 3));
        build_into(&fb); // builds only append; transient faults hit reads
        let store = open_retrying(&fb).unwrap();
        let exec = ParallelExecutor::serial().with_retry(RetryPolicy::with_attempts(5));
        let (res, m) = exec.execute(&store, &q).unwrap();
        assert_eq!(fingerprint(&res), want, "seed {seed}: results drifted");
        assert!(
            !m.degradation.is_degraded(),
            "seed {seed}: spurious degradation"
        );
        if m.retries > 0 {
            saw_retries = true;
            assert!(m.retry_wait_s > 0.0, "retries without simulated backoff");
        }

        // Threaded, multi-rank, cached replay under the same schedule.
        fb.reset_attempts();
        let cache = std::sync::Arc::new(BlockCache::with_budget_mb(64));
        let store = open_retrying(&fb).unwrap().with_cache(cache);
        let exec = ParallelExecutor::new(4, CostModel::default())
            .threaded(true)
            .with_retry(RetryPolicy::with_attempts(5));
        for pass in 0..2 {
            let (res, m) = exec.execute(&store, &q).unwrap();
            assert_eq!(
                fingerprint(&res),
                want,
                "seed {seed} threaded pass {pass}: results drifted"
            );
            assert!(!m.degradation.is_degraded());
        }
    }
    assert!(saw_retries, "0.4 transient rate never triggered a retry");
}

#[test]
fn transient_faults_with_retry_are_byte_identical() {
    for_both_worlds(transient_faults_with_retry_are_byte_identical_in);
}

fn bit_flip_matrix_is_detected_or_reported_never_silent_in(fresh: Fresh) {
    let clean = fresh();
    build_into(&clean);
    let q = full_values_query();
    let baseline = MlocStore::open(&clean, DS, VAR)
        .unwrap()
        .query_serial(&q)
        .unwrap();

    let files: Vec<String> = clean
        .list()
        .into_iter()
        .filter(|f| f.ends_with(".dat") || f.ends_with(".idx"))
        .collect();
    let (mut failed, mut degraded, mut harmless) = (0u32, 0u32, 0u32);
    for file in &files {
        let flen = clean.len(file).unwrap();
        for frac in [0.05, 0.3, 0.55, 0.8, 0.97] {
            let offset = ((flen as f64 * frac) as u64).min(flen - 1);
            let mut plan = FaultPlan::none();
            plan.flips.push(mloc_pfs::BitFlip {
                file: file.clone(),
                offset,
                mask: 0x40,
            });
            let fb = FaultBackend::new(fresh(), plan);
            build_into(&fb);
            let tag = format!("{file}@{offset}");
            let store = MlocStore::open(&fb, DS, VAR).unwrap();
            match store.query_with_metrics(&q) {
                Err(e) => {
                    failed += 1;
                    // Corruption must surface as corruption, with the
                    // damaged file named.
                    assert!(e.is_corruption(), "{tag}: wrong error class: {e}");
                    if let MlocError::CorruptExtent { file: f, .. } = &e {
                        assert_eq!(f, file, "{tag}: wrong file in error");
                    }
                }
                Ok((res, m)) => {
                    if m.degradation.is_degraded() {
                        degraded += 1;
                    } else {
                        harmless += 1;
                    }
                    assert_not_silently_wrong(&tag, &baseline, &res, &m);
                }
            }
        }
    }
    // The matrix must exercise both failure modes, not just one.
    assert!(failed > 0, "no flip was detected as corruption");
    assert!(degraded > 0, "no flip produced graceful degradation");
    let _ = harmless; // flips in extents this query never reads
}

#[test]
fn bit_flip_matrix_is_detected_or_reported_never_silent() {
    for_both_worlds(bit_flip_matrix_is_detected_or_reported_never_silent_in);
}

fn verify_pinpoints_injected_flips_in(fresh: Fresh) {
    let clean = fresh();
    build_into(&clean);
    for file in clean.list() {
        if !(file.ends_with(".dat") || file.ends_with(".idx") || file.ends_with("meta")) {
            continue;
        }
        // Flip early in the file: always inside the checksummed
        // payload, never in the footer.
        let offset = (clean.len(&file).unwrap() / 4).min(10);
        let mut plan = FaultPlan::none();
        plan.flips.push(mloc_pfs::BitFlip {
            file: file.clone(),
            offset,
            mask: 0x08,
        });
        let fb = FaultBackend::new(fresh(), plan);
        build_into(&fb);
        let report = verify_variable(&fb, DS, VAR).unwrap();
        assert!(!report.is_clean(), "{file}: flip not detected");
        let hit = report
            .damage
            .iter()
            .find(|d| d.file == file && d.offset <= offset && offset < d.offset + d.len);
        assert!(
            hit.is_some(),
            "{file}: no damage entry covers offset {offset}: {report}"
        );
    }
}

#[test]
fn verify_pinpoints_injected_flips() {
    for_both_worlds(verify_pinpoints_injected_flips_in);
}

fn flipped_summary_extent_is_detected_and_pinpointed_in(fresh: Fresh) {
    // The v2 chunk-summary section steers which bitmaps a query even
    // reads, so damage to it must fail queries loudly and be mapped by
    // offline verification — never silently drop or add chunks.
    let clean = fresh();
    build_into(&clean);
    let file = "fm/v/bin0002.idx".to_string();
    let raw = clean.read(&file, 0, clean.len(&file).unwrap()).unwrap();
    let idx = mloc::index::BinIndex::decode_header(&raw).unwrap();
    assert!(idx.summary_bytes > 0, "build should produce v2 indexes");
    let offset = idx.summary_file_offset() + idx.summary_bytes / 2;

    let mut plan = FaultPlan::none();
    plan.flips.push(mloc_pfs::BitFlip {
        file: file.clone(),
        offset,
        mask: 0x10,
    });
    let fb = FaultBackend::new(fresh(), plan);
    build_into(&fb);

    // Every query through that bin fails with the extent named.
    let store = MlocStore::open(&fb, DS, VAR).unwrap();
    let err = store
        .query_serial(&Query::region(f64::MIN, f64::MAX))
        .unwrap_err();
    assert!(err.is_corruption(), "wrong error class: {err}");
    if let MlocError::CorruptExtent {
        file: f,
        offset: o,
        len,
        ..
    } = &err
    {
        assert_eq!(f, &file);
        assert!(
            *o <= offset && offset < o + len,
            "extent misses flip: {err}"
        );
    }

    // Offline verification pinpoints and labels the summary extent.
    let report = verify_variable(&fb, DS, VAR).unwrap();
    assert_eq!(report.damage.len(), 1, "{report}");
    let d = &report.damage[0];
    assert_eq!(d.file, file);
    assert_eq!(d.offset, idx.summary_file_offset());
    assert!(d.what.starts_with("chunk summary"), "{}", d.what);
}

#[test]
fn flipped_summary_extent_is_detected_and_pinpointed() {
    for_both_worlds(flipped_summary_extent_is_detected_and_pinpointed_in);
}

fn lost_files_fail_loudly_but_index_queries_survive_data_loss_in(fresh: Fresh) {
    let clean = fresh();
    let values = build_into(&clean);

    // Lose one bin's data file: a values query must fail (the base
    // byte group is gone — not degradable)...
    let mut plan = FaultPlan::none();
    plan.lost_files.push("bin0002.dat".to_string());
    let fb = FaultBackend::new(fresh(), plan);
    build_into(&fb);
    let store = MlocStore::open(&fb, DS, VAR).unwrap();
    assert!(store.query_serial(&full_values_query()).is_err());
    // ...but a region query answered from the index alone still works.
    let res = store
        .query_serial(&Query::region(f64::MIN, f64::MAX))
        .unwrap();
    assert_eq!(res.len(), values.len());

    // Lose an index file: everything touching that bin fails.
    let mut plan = FaultPlan::none();
    plan.lost_files.push("bin0001.idx".to_string());
    let fb = FaultBackend::new(fresh(), plan);
    build_into(&fb);
    let store = MlocStore::open(&fb, DS, VAR).unwrap();
    assert!(store.query_serial(&full_values_query()).is_err());
    assert!(store
        .query_serial(&Query::region(f64::MIN, f64::MAX))
        .is_err());
}

#[test]
fn lost_files_fail_loudly_but_index_queries_survive_data_loss() {
    for_both_worlds(lost_files_fail_loudly_but_index_queries_survive_data_loss_in);
}

fn torn_meta_write_is_an_incomplete_build_in(fresh: Fresh) {
    // Crash mid-meta-write: the footer trailer (the commit marker,
    // written last) never lands, so the variable must refuse to open.
    let mut plan = FaultPlan::none();
    plan.torn_appends.push(mloc_pfs::TornAppend {
        file: "meta".to_string(),
        keep: 40,
    });
    let fb = FaultBackend::new(fresh(), plan);
    let field = gts_like_2d(64, 64, 17);
    let config = MlocConfig::builder(vec![64, 64])
        .chunk_shape(vec![16, 16])
        .num_bins(6)
        .build();
    // The build observes the crash...
    assert!(build_variable(&fb, DS, VAR, field.values(), &config).is_err());
    // ...and the torn remnant can never be mistaken for a variable.
    match MlocStore::open(&fb, DS, VAR) {
        Ok(_) => panic!("torn meta opened as a valid variable"),
        Err(err) => assert!(err.is_corruption(), "torn meta opened as: {err}"),
    }
}

#[test]
fn torn_meta_write_is_an_incomplete_build() {
    for_both_worlds(torn_meta_write_is_an_incomplete_build_in);
}

/// A fused read that hits a transient fault is retried by the leading
/// session *once on behalf of all waiters*: the summed retry count of
/// K identical fused sessions equals the retry count of a single
/// session running alone under the same fault schedule — and every
/// session's answer is byte-identical to the fault-free baseline.
fn fused_transient_retries_happen_once_for_all_waiters_in(fresh: Fresh) {
    let clean = fresh();
    build_into(&clean);
    let q = full_values_query();
    let want = fingerprint(
        &MlocStore::open(&clean, DS, VAR)
            .unwrap()
            .query_serial(&q)
            .unwrap(),
    );

    let fb = FaultBackend::new(fresh(), FaultPlan::transient(7, 0.4, 3));
    build_into(&fb);

    // Reference: one session alone. The open is burned in separately
    // (catalog/meta signatures are disjoint from the query's reads),
    // so `m_alone.retries` counts exactly the query's own retries.
    fb.reset_attempts();
    open_retrying(&fb).unwrap();
    let store = open_retrying(&fb).unwrap();
    let exec = ParallelExecutor::serial().with_retry(RetryPolicy::with_attempts(5));
    let (res, m_alone) = exec.execute(&store, &q).unwrap();
    assert_eq!(fingerprint(&res), want);
    assert!(m_alone.retries > 0, "schedule produced no retries");

    // Six identical sessions across three tenants, fused, same
    // schedule replayed from scratch. The server's own open is burned
    // in the same way first.
    fb.reset_attempts();
    open_retrying(&fb).unwrap();
    let config = ServeConfig {
        workers: 3,
        window: 6,
        cache_mb: 0,
        fusion: true,
        retry: RetryPolicy::with_attempts(5),
        ..ServeConfig::default()
    };
    let server = QueryServer::new(&fb, config);
    let specs: Vec<SessionSpec> = (0..6)
        .map(|i| SessionSpec::new(["a", "b", "c"][i % 3], DS, VAR, q.clone()))
        .collect();
    let reports = server.run(&specs);
    let mut total_retries = 0u64;
    for r in &reports {
        let res = r
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("session {} failed: {e}", r.index));
        assert_eq!(fingerprint(res), want, "session {} drifted", r.index);
        total_retries += r.metrics.as_ref().unwrap().retries;
    }
    assert_eq!(
        total_retries, m_alone.retries,
        "retries must happen once per physical read, not once per waiter"
    );
    let stats = server.fusion_stats().unwrap();
    assert!(stats.fused_reads > 0, "sessions never fused: {stats:?}");
}

#[test]
fn fused_transient_retries_happen_once_for_all_waiters() {
    for_both_worlds(fused_transient_retries_happen_once_for_all_waiters_in);
}

/// A fused read that hits *permanent* corruption fails every waiting
/// session with the corrupt-extent context — no session may see a
/// silent success just because another session led the read.
fn fused_corruption_fails_every_waiting_session_in(fresh: Fresh) {
    let mut plan = FaultPlan::none();
    plan.flips.push(mloc_pfs::BitFlip {
        file: "bin0002.dat".to_string(),
        offset: 4,
        mask: 0x20,
    });
    let fb = FaultBackend::new(fresh(), plan);
    build_into(&fb);

    let config = ServeConfig {
        workers: 3,
        window: 6,
        cache_mb: 0,
        fusion: true,
        ..ServeConfig::default()
    };
    let server = QueryServer::new(&fb, config);
    let q = full_values_query();
    let specs: Vec<SessionSpec> = (0..6)
        .map(|i| SessionSpec::new(["a", "b", "c"][i % 3], DS, VAR, q.clone()))
        .collect();
    let reports = server.run(&specs);
    for r in &reports {
        match &r.outcome {
            Ok(_) => panic!(
                "session {}: corruption silently succeeded through fusion",
                r.index
            ),
            Err(ServeError::Query(e)) => {
                assert!(
                    e.is_corruption(),
                    "session {}: wrong error class: {e}",
                    r.index
                );
                if let MlocError::CorruptExtent { file, .. } = e {
                    assert!(file.ends_with("bin0002.dat"), "session {}: {e}", r.index);
                }
            }
            Err(other) => panic!("session {}: wrong failure kind: {other}", r.index),
        }
    }
    let usage = server.usage();
    assert_eq!(usage.values().map(|u| u.failed).sum::<u64>(), 6);
}

#[test]
fn fused_corruption_fails_every_waiting_session() {
    for_both_worlds(fused_corruption_fails_every_waiting_session_in);
}

fn base_part_corruption_carries_context_in_all_modes_in(fresh: Fresh) {
    // Flip the first data extent (a base byte group): every execution
    // mode must fail with the file and offset, never panic or degrade.
    let mut plan = FaultPlan::none();
    plan.flips.push(mloc_pfs::BitFlip {
        file: "bin0002.dat".to_string(),
        offset: 4,
        mask: 0x20,
    });
    let fb = FaultBackend::new(fresh(), plan);
    build_into(&fb);
    let q = full_values_query();
    let cache = std::sync::Arc::new(BlockCache::with_budget_mb(64));
    let execs = [
        ParallelExecutor::serial(),
        ParallelExecutor::new(4, CostModel::default()),
        ParallelExecutor::new(4, CostModel::default()).threaded(true),
    ];
    for (i, exec) in execs.iter().enumerate() {
        for cached in [false, true] {
            let mut store = MlocStore::open(&fb, DS, VAR).unwrap();
            if cached {
                store.set_cache(Some(cache.clone()));
            }
            let err = match exec.execute(&store, &q) {
                Ok(_) => panic!("mode {i} cached={cached}: corruption not detected"),
                Err(e) => e,
            };
            match &err {
                MlocError::CorruptExtent {
                    file, offset, len, ..
                } => {
                    assert!(file.ends_with("bin0002.dat"), "mode {i}: {err}");
                    assert!(
                        *offset <= 4 && 4 < offset + len,
                        "mode {i}: extent does not cover the flip: {err}"
                    );
                }
                other => panic!("mode {i} cached={cached}: wrong error: {other}"),
            }
        }
    }
}

#[test]
fn base_part_corruption_carries_context_in_all_modes() {
    for_both_worlds(base_part_corruption_carries_context_in_all_modes_in);
}
