//! Property-based tests for the extent-fusion core: run planning over
//! arbitrary want-lists, fan-out fidelity (a fused view is always
//! byte-identical to a direct read of the same want), and single-flight
//! behavior under real thread concurrency.

use mloc::fusion::{coalesced_read, plan_runs, COALESCE_GAP};
use mloc::ExtentFuser;
use mloc_pfs::{MemBackend, RankIo, StorageBackend};
use proptest::prelude::*;
use std::sync::Arc;

const FILE_LEN: u64 = 8192;

/// Arbitrary overlapping / adjacent / disjoint / duplicate / zero-len
/// want-lists, clamped to the file.
fn wants_strategy() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0u64..FILE_LEN, 0u32..600), 0..24).prop_map(|v| {
        v.into_iter()
            .map(|(off, len)| (off, len.min((FILE_LEN - off) as u32)))
            .collect()
    })
}

fn test_file(be: &MemBackend) -> Vec<u8> {
    let data: Vec<u8> = (0..FILE_LEN).map(|i| (i * 31 % 251) as u8).collect();
    be.append("f", &data).unwrap();
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `plan_runs` is a partition of the nonzero wants into a minimal
    /// set of merged reads: every nonzero want lands in exactly one
    /// run (never dropped, never double-counted), run bounds are tight
    /// over their members, and adjacent runs are separated by more
    /// than the gap (otherwise they should have merged).
    #[test]
    fn plan_runs_partitions_wants_minimally(wants in wants_strategy(), gap in 0u64..8192) {
        let runs = plan_runs(&wants, gap);
        let mut seen = vec![0usize; wants.len()];
        for r in &runs {
            assert!(r.start < r.end, "empty run");
            assert!(!r.wants.is_empty(), "run with no members");
            for &w in &r.wants {
                seen[w] += 1;
                let (off, len) = wants[w];
                assert!(len > 0, "zero-length want in a run");
                assert!(
                    r.start <= off && off + u64::from(len) <= r.end,
                    "want {w} outside its run"
                );
            }
            let lo = r.wants.iter().map(|&w| wants[w].0).min().unwrap();
            let hi = r
                .wants
                .iter()
                .map(|&w| wants[w].0 + u64::from(wants[w].1))
                .max()
                .unwrap();
            assert_eq!(lo, r.start, "run start not tight");
            assert_eq!(hi, r.end, "run end not tight");
        }
        for (i, &(_, len)) in wants.iter().enumerate() {
            assert_eq!(
                seen[i],
                usize::from(len > 0),
                "want {i} dropped or double-counted"
            );
        }
        for pair in runs.windows(2) {
            assert!(
                pair[0].end + gap < pair[1].start,
                "mergeable runs left unmerged: {:?}",
                (pair[0].end, pair[1].start)
            );
        }
    }

    /// Every fanned-out view equals a direct (unfused) coalesced read
    /// of the same want — even when the fuser window was primed by a
    /// different session with a different want-list, so reads are
    /// served from retained extents by containment.
    #[test]
    fn fanned_out_views_equal_direct_reads(wants in wants_strategy(), split in 0usize..24) {
        let be = MemBackend::new();
        let data = test_file(&be);

        let mut io = RankIo::new(&be);
        let direct = coalesced_read(&mut io, "f", &wants, None).unwrap();

        // Another session's wants (an arbitrary prefix) prime the
        // window; then this session reads through the fuser.
        let fu = ExtentFuser::with_window_mb(4);
        let other = &wants[..split.min(wants.len())];
        let mut io1 = RankIo::new(&be);
        coalesced_read(&mut io1, "f", other, Some(&fu)).unwrap();
        let mut io2 = RankIo::new(&be);
        let fused = coalesced_read(&mut io2, "f", &wants, Some(&fu)).unwrap();

        assert_eq!(direct.len(), fused.len());
        assert_eq!(direct.len(), wants.len());
        for (i, (d, f)) in direct.iter().zip(&fused).enumerate() {
            let (off, len) = wants[i];
            assert_eq!(&d[..], &f[..], "want {i}: fused bytes differ");
            assert_eq!(
                &d[..],
                &data[off as usize..(off + u64::from(len)) as usize],
                "want {i}: direct bytes wrong"
            );
        }
    }

    /// N threads reading the same want-list concurrently through one
    /// fuser: exactly one physical read per planned run (single
    /// flight), every other read fused, and all results byte-identical
    /// to the direct read.
    #[test]
    fn concurrent_identical_want_lists_single_flight(wants in wants_strategy()) {
        const SESSIONS: usize = 4;
        let be = MemBackend::new();
        test_file(&be);

        let mut io = RankIo::new(&be);
        let direct = coalesced_read(&mut io, "f", &wants, None).unwrap();

        let fu = Arc::new(ExtentFuser::with_window_mb(4));
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..SESSIONS)
                .map(|_| {
                    let fu = Arc::clone(&fu);
                    let be = &be;
                    let wants = &wants;
                    s.spawn(move || {
                        let mut io = RankIo::new(be);
                        coalesced_read(&mut io, "f", wants, Some(&fu)).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (t, views) in results.iter().enumerate() {
            assert_eq!(views.len(), direct.len());
            for (i, (v, d)) in views.iter().zip(&direct).enumerate() {
                assert_eq!(&v[..], &d[..], "thread {t} want {i}");
            }
        }
        let runs = plan_runs(&wants, COALESCE_GAP).len() as u64;
        let stats = fu.stats();
        assert_eq!(stats.physical_reads, runs, "single flight violated");
        assert_eq!(
            stats.fused_reads,
            runs * (SESSIONS as u64 - 1),
            "every non-leading run read must fuse"
        );
        assert_eq!(stats.failed_reads, 0);
    }
}
