//! Differential tests for the two index formats: a v1 dataset
//! (produced by downgrading a v2 build in place) must answer every
//! query byte-identically to the v2 dataset it came from, in every
//! execution mode — serial, threaded, cached cold/warm, and fused.
//! Membership queries are part of the workload, and are additionally
//! checked against the general reconstruction path and the naive scan.

use mloc::exec::ParallelExecutor;
use mloc::index::downgrade_variable_to_v1;
use mloc::prelude::*;
use mloc_compress::CodecKind;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::{CostModel, MemBackend, StorageBackend};
use std::sync::Arc;

const SHAPE: [usize; 2] = [96, 96];
const DS: &str = "fmt";
const VAR: &str = "v";

fn build(be: &MemBackend) -> Vec<f64> {
    let field = gts_like_2d(SHAPE[0], SHAPE[1], 41);
    let config = MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(vec![24, 24])
        .num_bins(10)
        .codec(CodecKind::Deflate)
        .build();
    build_variable(be, DS, VAR, field.values(), &config).unwrap();
    field.into_values()
}

/// Scans plus membership probes, with overlap so cached modes see both
/// cold and warm blocks.
fn workload(values: &[f64]) -> Vec<Query> {
    let mut gen = QueryGen::new(values.to_vec(), SHAPE.to_vec(), 11);
    let n = values.len() as u64;
    let mut queries = Vec::new();
    for i in 0..3 {
        let (lo, hi) = gen.value_constraint(0.08 + 0.04 * i as f64);
        queries.push(Query::region(lo, hi));
        queries.push(Query::values_where(lo, hi));
        queries.push(Query::values_in(Region::new(gen.region(0.1))));
        queries.push(Query::membership((0..n).step_by(7 + i).collect()));
        queries.push(Query::membership_where(lo, hi, (0..n).step_by(5).collect()));
        queries.push(Query::membership_where(lo, hi, (0..n).step_by(3).collect()).with_values());
    }
    queries
}

fn bitwise_eq(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.positions(), b.positions(), "{ctx}: positions");
    match (a.values(), b.values()) {
        (None, None) => {}
        (Some(av), Some(bv)) => {
            assert_eq!(av.len(), bv.len(), "{ctx}: value count");
            for (x, y) in av.iter().zip(bv) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: value bits");
            }
        }
        _ => panic!("{ctx}: one side has values, the other does not"),
    }
}

/// Two backends with the same logical data: a v2 build and its
/// in-place v1 downgrade. The build is deterministic, so any observable
/// difference between the two is the index format's doing.
fn v2_and_v1() -> (MemBackend, MemBackend, Vec<f64>) {
    let v2 = MemBackend::new();
    let values = build(&v2);
    let v1 = MemBackend::new();
    build(&v1);
    let rewritten = downgrade_variable_to_v1(&v1, DS, VAR).unwrap();
    assert_eq!(rewritten, 10);
    // Sanity: the two formats really differ on disk (version byte).
    let name = format!("{DS}/{VAR}/bin0000.idx");
    assert_eq!(v1.read(&name, 0, 5).unwrap()[4], 1);
    assert_eq!(v2.read(&name, 0, 5).unwrap()[4], 2);
    (v2, v1, values)
}

#[test]
fn v1_and_v2_reads_are_byte_identical_in_every_mode() {
    let (v2, v1, values) = v2_and_v1();
    let queries = workload(&values);

    let plain2 = MlocStore::open(&v2, DS, VAR).unwrap();
    let plain1 = MlocStore::open(&v1, DS, VAR).unwrap();
    let cached2 = MlocStore::open(&v2, DS, VAR)
        .unwrap()
        .with_cache(Arc::new(BlockCache::with_budget_mb(64)));
    let cached1 = MlocStore::open(&v1, DS, VAR)
        .unwrap()
        .with_cache(Arc::new(BlockCache::with_budget_mb(64)));
    let fuser2 = Arc::new(ExtentFuser::with_window_mb(4));
    let fuser1 = Arc::new(ExtentFuser::with_window_mb(4));
    let fused2 = MlocStore::open(&v2, DS, VAR)
        .unwrap()
        .with_fusion(Arc::clone(&fuser2));
    let fused1 = MlocStore::open(&v1, DS, VAR)
        .unwrap()
        .with_fusion(Arc::clone(&fuser1));
    let threaded = ParallelExecutor::new(4, CostModel::default()).threaded(true);

    for (i, q) in queries.iter().enumerate() {
        let reference = plain2.query_serial(q).unwrap();
        let r1 = plain1.query_serial(q).unwrap();
        bitwise_eq(&r1, &reference, &format!("query {i}: serial v1 vs v2"));

        let (t2, _) = threaded.execute(&plain2, q).unwrap();
        let (t1, _) = threaded.execute(&plain1, q).unwrap();
        bitwise_eq(&t2, &reference, &format!("query {i}: threaded v2"));
        bitwise_eq(&t1, &reference, &format!("query {i}: threaded v1"));

        for (tag, store) in [("v2", &cached2), ("v1", &cached1)] {
            let (cold, _) = store.query_with_metrics(q).unwrap();
            bitwise_eq(&cold, &reference, &format!("query {i}: cached cold {tag}"));
            let (warm, m) = store.query_with_metrics(q).unwrap();
            bitwise_eq(&warm, &reference, &format!("query {i}: cached warm {tag}"));
            assert!(m.cache_hits > 0, "query {i}: warm {tag} pass had no hits");
        }

        for (tag, store, fuser) in [("v2", &fused2, &fuser2), ("v1", &fused1, &fuser1)] {
            fuser.begin_window();
            let r = store.query_serial(q).unwrap();
            bitwise_eq(&r, &reference, &format!("query {i}: fused {tag}"));
        }
    }
}

#[test]
fn membership_matches_scan_and_general_path_on_both_formats() {
    let (v2, v1, values) = v2_and_v1();
    let n = values.len() as u64;
    let points: Vec<u64> = (0..n).step_by(11).collect();
    let mut gen = QueryGen::new(values.clone(), SHAPE.to_vec(), 23);
    let (lo, hi) = gen.value_constraint(0.3);

    let want: Vec<u64> = points
        .iter()
        .copied()
        .filter(|&p| {
            let v = values[p as usize];
            v >= lo && v < hi
        })
        .collect();
    let q = Query::membership_where(lo, hi, points.clone()).with_values();

    for (tag, be) in [("v2", &v2), ("v1", &v1)] {
        let store = MlocStore::open(be, DS, VAR).unwrap();
        let fast = store.query_serial(&q).unwrap();
        assert_eq!(fast.positions(), &want[..], "{tag}: naive mismatch");
        for (&p, &v) in fast.positions().iter().zip(fast.values().unwrap()) {
            assert_eq!(v.to_bits(), values[p as usize].to_bits(), "{tag}: value");
        }
        mloc::query::engine::force_general_reconstruct(true);
        let general = store.query_serial(&q);
        mloc::query::engine::force_general_reconstruct(false);
        bitwise_eq(
            &general.unwrap(),
            &fast,
            &format!("{tag}: general vs probe path"),
        );
    }
}

#[test]
fn plain_membership_is_answered_from_the_index_alone() {
    let (v2, v1, values) = v2_and_v1();
    let points: Vec<u64> = (0..values.len() as u64).step_by(13).collect();
    let q = Query::membership(points.clone());
    for (tag, be) in [("v2", &v2), ("v1", &v1)] {
        let store = MlocStore::open(be, DS, VAR).unwrap();
        let (res, m) = store.query_with_metrics(&q).unwrap();
        assert_eq!(res.positions(), &points[..], "{tag}: membership positions");
        assert_eq!(m.data_bytes, 0, "{tag}: membership touched data");
        assert!(m.index_bytes > 0, "{tag}: no index reads recorded");
    }
}
