//! Differential suite for the batched storage substrate: the same
//! queries must answer byte-identically no matter how the bytes are
//! serviced (sequential open-per-read, cached handles, submission
//! pool) or laid out (flat directory, 1/2/4 shards), in every
//! execution mode (serial, threaded, cached, fused, progressive).
//!
//! The reference is the in-memory backend under the serial executor;
//! every world/mode pair is compared bit-for-bit against it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mloc::exec::ParallelExecutor;
use mloc::prelude::*;
use mloc::{ExtentFuser, MlocStore};
use mloc_compress::CodecKind;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::{CostModel, DirBackend, MemBackend, PoolDirBackend, ShardRouter, StorageBackend};

const SHAPE: [usize; 2] = [96, 96];
const DS: &str = "iosd";
const VAR: &str = "v";

static ROOT_ID: AtomicUsize = AtomicUsize::new(0);

struct TempRoot(std::path::PathBuf);

impl TempRoot {
    fn new() -> Self {
        let p = std::env::temp_dir().join(format!(
            "mloc-io-shard-diff-{}-{}",
            std::process::id(),
            ROOT_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempRoot(p)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_into(be: &dyn StorageBackend) -> Vec<f64> {
    let field = gts_like_2d(SHAPE[0], SHAPE[1], 41);
    let config = MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(vec![24, 24])
        .num_bins(10)
        .codec(CodecKind::Deflate)
        .build();
    build_variable(be, DS, VAR, field.values(), &config).unwrap();
    field.into_values()
}

/// Every storage world under test: the seed's sequential behavior,
/// the batched pool, and sharded layouts of 1, 2 and 4 shards (each
/// shard its own submission pool).
fn worlds(root: &TempRoot) -> Vec<(String, Box<dyn StorageBackend>)> {
    let mut out: Vec<(String, Box<dyn StorageBackend>)> = vec![
        (
            "dir-sequential".into(),
            Box::new(DirBackend::uncached(root.0.join("seq")).unwrap()),
        ),
        (
            "pool-batched".into(),
            Box::new(PoolDirBackend::new(root.0.join("pool"), 3).unwrap()),
        ),
    ];
    for n in [1usize, 2, 4] {
        let shards = (0..n)
            .map(|s| {
                Box::new(PoolDirBackend::new(root.0.join(format!("n{n}s{s}")), 2).unwrap())
                    as Box<dyn StorageBackend>
            })
            .collect();
        out.push((
            format!("shard-{n}"),
            Box::new(ShardRouter::new(shards).unwrap()),
        ));
    }
    // Replicated layouts (R = 2) and a hedged variant: replication and
    // hedging change which copy serves the bytes, never the bytes.
    for n in [2usize, 4] {
        let shards = (0..n)
            .map(|s| {
                Box::new(PoolDirBackend::new(root.0.join(format!("n{n}r2s{s}")), 2).unwrap())
                    as Box<dyn StorageBackend>
            })
            .collect();
        out.push((
            format!("shard-{n}-r2"),
            Box::new(ShardRouter::replicated(shards, 2).unwrap()),
        ));
    }
    let hedged = (0..2)
        .map(|s| {
            Box::new(PoolDirBackend::new(root.0.join(format!("hedge-s{s}")), 2).unwrap())
                as Box<dyn StorageBackend>
        })
        .collect();
    out.push((
        "shard-2-r2-hedged".into(),
        Box::new(ShardRouter::replicated(hedged, 2).unwrap().with_hedge(0.0)),
    ));
    out
}

/// Mixed workload with overlap so caches and the fuser see repeats.
fn workload(values: &[f64]) -> Vec<Query> {
    let mut gen = QueryGen::new(values.to_vec(), SHAPE.to_vec(), 11);
    let mut queries = Vec::new();
    for i in 0..2 {
        let (lo, hi) = gen.value_constraint(0.1 + 0.05 * i as f64);
        queries.push(Query::region(lo, hi));
        queries.push(Query::values_where(lo, hi));
        let region = Region::new(gen.region(0.1));
        queries.push(Query::values_where(lo, hi).with_region(region));
    }
    queries
}

fn bitwise_eq(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.positions(), b.positions(), "{ctx}: positions");
    match (a.values(), b.values()) {
        (None, None) => {}
        (Some(av), Some(bv)) => {
            assert_eq!(av.len(), bv.len(), "{ctx}: value count");
            for (x, y) in av.iter().zip(bv) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: value bits");
            }
        }
        _ => panic!("{ctx}: one side has values, the other does not"),
    }
}

#[test]
fn every_backend_and_exec_mode_is_byte_identical() {
    let reference_be = MemBackend::new();
    let values = build_into(&reference_be);
    let reference = MlocStore::open(&reference_be, DS, VAR).unwrap();
    let queries = workload(&values);
    let baselines: Vec<QueryResult> = queries
        .iter()
        .map(|q| reference.query_serial(q).unwrap())
        .collect();

    let root = TempRoot::new();
    let serial = ParallelExecutor::serial();
    let threaded = ParallelExecutor::new(4, CostModel::default()).threaded(true);
    for (world, be) in worlds(&root) {
        build_into(&be);
        let plain = MlocStore::open(&be, DS, VAR).unwrap();
        let cached = MlocStore::open(&be, DS, VAR)
            .unwrap()
            .with_cache(Arc::new(BlockCache::with_budget_mb(64)));
        let fused = MlocStore::open(&be, DS, VAR)
            .unwrap()
            .with_fusion(Arc::new(ExtentFuser::with_window_mb(4)));
        for (i, q) in queries.iter().enumerate() {
            let want = &baselines[i];
            let (s, _) = serial.execute(&plain, q).unwrap();
            bitwise_eq(&s, want, &format!("{world} query {i}: serial"));
            let (t, _) = threaded.execute(&plain, q).unwrap();
            bitwise_eq(&t, want, &format!("{world} query {i}: threaded"));
            // Cold pass fills the cache, warm pass must hit it.
            let (c1, _) = cached.query_with_metrics(q).unwrap();
            bitwise_eq(&c1, want, &format!("{world} query {i}: cached cold"));
            let (c2, m2) = cached.query_with_metrics(q).unwrap();
            bitwise_eq(&c2, want, &format!("{world} query {i}: cached warm"));
            assert!(m2.cache_hits > 0, "{world} query {i}: warm pass no hits");
            let (f, _) = serial.execute(&fused, q).unwrap();
            bitwise_eq(&f, want, &format!("{world} query {i}: fused"));
            // Progressive ladder run to completion equals the direct
            // answer (values queries only; the ladder refines values).
            if q.wants_values() {
                let mut pq = serial.progressive(&plain, q).unwrap();
                pq.run_to_completion().unwrap();
                let (p, _, steps, _) = pq.into_outcome();
                assert!(!steps.is_empty(), "{world} query {i}: no ladder steps");
                bitwise_eq(&p, want, &format!("{world} query {i}: progressive"));
            }
        }
    }
}

/// The batched pool and every sharded layout service the *same
/// logical reads* as the sequential world: identical trace shapes mean
/// the batching substrate changes how bytes move, never which bytes a
/// query needs.
#[test]
fn sharded_layouts_preserve_io_accounting() {
    let root = TempRoot::new();
    let seq_be = DirBackend::uncached(root.0.join("a")).unwrap();
    let values = build_into(&seq_be);
    let q = Query::values_where(0.2, 0.7);
    let store = MlocStore::open(&seq_be, DS, VAR).unwrap();
    let (_, m_seq) = store.query_with_metrics(&q).unwrap();
    drop(values);

    for n in [2usize, 4] {
        let shards = (0..n)
            .map(|s| {
                Box::new(DirBackend::new(root.0.join(format!("b{n}s{s}"))).unwrap())
                    as Box<dyn StorageBackend>
            })
            .collect();
        let sharded = ShardRouter::new(shards).unwrap();
        build_into(&sharded);
        let store = MlocStore::open(&sharded, DS, VAR).unwrap();
        let (_, m) = store.query_with_metrics(&q).unwrap();
        assert_eq!(m.bytes_read, m_seq.bytes_read, "{n} shards: bytes drifted");
        assert_eq!(
            m.bins_touched, m_seq.bins_touched,
            "{n} shards: bins drifted"
        );
        assert_eq!(
            m.chunks_touched, m_seq.chunks_touched,
            "{n} shards: chunks drifted"
        );
    }
}

/// With R = 2 over two shards, wiping EITHER shard directory leaves
/// every query byte-identical: reads fall through to the surviving
/// replica, `io.read_repair` accounts for exactly the masked reads,
/// and the write-back refills the wiped shard so a follow-up pass
/// needs no masking at all.
#[test]
fn replicated_world_survives_single_shard_loss_byte_identically() {
    let root = TempRoot::new();
    let mk = |root: &TempRoot| {
        let shards = (0..2)
            .map(|s| {
                Box::new(PoolDirBackend::new(root.0.join(format!("k{s}")), 2).unwrap())
                    as Box<dyn StorageBackend>
            })
            .collect();
        ShardRouter::replicated(shards, 2).unwrap()
    };
    let be = mk(&root);
    // Build through the Dataset layer so fsck/repair apply (they
    // classify against the catalog).
    let field = mloc_datagen::gts_like_2d(SHAPE[0], SHAPE[1], 41);
    let config = MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(vec![24, 24])
        .num_bins(10)
        .codec(CodecKind::Deflate)
        .build();
    let ds = mloc::Dataset::create(&be, DS, config).unwrap();
    ds.add_variable(VAR, field.values()).unwrap();
    drop(ds);
    let values = field.into_values();
    let queries = workload(&values);
    let store = MlocStore::open(&be, DS, VAR).unwrap();
    let baselines: Vec<QueryResult> = queries
        .iter()
        .map(|q| store.query_serial(q).unwrap())
        .collect();
    let all_files = {
        let mut fs = be.list();
        fs.sort();
        fs
    };
    drop(store);
    drop(be);

    for dead in 0..2usize {
        std::fs::remove_dir_all(root.0.join(format!("k{dead}"))).unwrap();
        let router = mk(&root);

        // Heal pass: one full read per file. Every file whose primary
        // copy lived on the wiped shard is a masked read — the counter
        // must account for each one, no more, no fewer.
        let mut masked = 0u64;
        for f in router.list() {
            let len = router.len(&f).unwrap();
            router.read(&f, 0, len).unwrap();
            if router.shard_of(&f) == dead {
                masked += 1;
            }
        }
        assert!(masked > 0, "shard {dead} held no primary copies");
        assert_eq!(
            router.read_repair_count(),
            masked,
            "shard {dead} wiped: masked reads misaccounted"
        );

        // Reads healed the primary copies; fsck sees a logically
        // healthy store, and `repair` restores the secondary copies
        // the read path cannot reach, refilling the wiped shard
        // completely.
        assert!(
            mloc::repair::fsck(&router, DS).unwrap().is_clean(),
            "shard {dead} wiped: reads did not heal the primaries"
        );
        let rep = mloc::repair::repair(&router, DS).unwrap();
        assert!(rep.is_healthy(), "shard {dead} wiped: {rep}");
        assert_eq!(
            rep.restored.len(),
            all_files.len() - masked as usize,
            "shard {dead} wiped: secondary copies misaccounted"
        );
        for s in 0..2 {
            let mut fs = router.shard(s).list();
            fs.sort();
            assert_eq!(fs, all_files, "shard {s} not fully refilled");
        }

        // Queries are byte-identical with zero further masking.
        let store = MlocStore::open(&router, DS, VAR).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let (res, m) = store.query_with_metrics(q).unwrap();
            bitwise_eq(
                &res,
                &baselines[i],
                &format!("shard {dead} wiped, query {i}"),
            );
            assert_eq!(
                m.read_repairs, 0,
                "shard {dead} wiped, query {i}: heal pass left masked reads"
            );
        }
    }
}
