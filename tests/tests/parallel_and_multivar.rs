//! Parallel execution invariants and the multi-variable / multi-
//! resolution access paths, end to end.

use mloc::exec::ParallelExecutor;
use mloc::prelude::*;
use mloc::query::multires::{plod_value_query, subset_value_query};
use mloc::query::multivar::select_then_fetch;
use mloc_datagen::gts_like_2d;
use mloc_pfs::{CostModel, MemBackend};

fn built_store<'a>(be: &'a MemBackend, var: &str, seed: u64) -> (Vec<f64>, MlocStore<'a>) {
    let field = gts_like_2d(96, 96, seed);
    let config = MlocConfig::builder(vec![96, 96])
        .chunk_shape(vec![16, 16])
        .num_bins(12)
        .build();
    build_variable(be, "pm", var, field.values(), &config).unwrap();
    (field.into_values(), MlocStore::open(be, "pm", var).unwrap())
}

#[test]
fn results_invariant_under_rank_count_and_mode() {
    let be = MemBackend::new();
    let (_, store) = built_store(&be, "a", 1);
    let q = Query::values_where(100.0, 5000.0);
    let reference = store.query_serial(&q).unwrap();
    for nranks in [2usize, 3, 5, 8, 16, 33] {
        for threaded in [false, true] {
            let exec = ParallelExecutor::new(nranks, CostModel::default()).threaded(threaded);
            let (res, m) = exec.execute(&store, &q).unwrap();
            assert_eq!(res, reference, "nranks={nranks} threaded={threaded}");
            assert_eq!(m.per_rank_io.len(), nranks);
        }
    }
}

#[test]
fn more_ranks_reduce_per_rank_cpu() {
    let be = MemBackend::new();
    let (_, store) = built_store(&be, "b", 2);
    let q = Query::values_where(f64::MIN, f64::MAX);
    let m1 = ParallelExecutor::new(1, CostModel::default())
        .execute(&store, &q)
        .unwrap()
        .1;
    let m8 = ParallelExecutor::new(8, CostModel::default())
        .execute(&store, &q)
        .unwrap()
        .1;
    // Critical-path CPU with 8 ranks must be well below serial CPU.
    let cpu1 = m1.decompress_s + m1.reconstruct_s;
    let cpu8 = m8.decompress_s + m8.reconstruct_s;
    assert!(
        cpu8 < cpu1 * 0.5,
        "8-rank critical path {cpu8} not below half of serial {cpu1}"
    );
}

#[test]
fn multivariable_select_then_fetch_end_to_end() {
    let be = MemBackend::new();
    let (temp, st) = built_store(&be, "temp", 3);
    let (humid, sh) = built_store(&be, "humid", 4);

    let mut sorted = temp.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let thresh = sorted[sorted.len() * 95 / 100];

    for nranks in [1usize, 4] {
        let exec = ParallelExecutor::new(nranks, CostModel::default());
        let out =
            select_then_fetch(&st, &sh, (thresh, f64::MAX), None, PlodLevel::FULL, &exec).unwrap();
        let want: Vec<(u64, f64)> = temp
            .iter()
            .enumerate()
            .filter(|(_, &t)| t >= thresh)
            .map(|(i, _)| (i as u64, humid[i]))
            .collect();
        assert_eq!(
            out.result.positions(),
            want.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
        assert_eq!(
            out.result.values().unwrap(),
            want.iter().map(|&(_, v)| v).collect::<Vec<_>>()
        );
        // The fetch only touched chunks containing selections.
        assert!(out.fetch_metrics.chunks_touched <= st.grid().num_chunks());
    }
}

#[test]
fn multivariable_with_spatial_constraint() {
    let be = MemBackend::new();
    let (temp, st) = built_store(&be, "t2", 5);
    let (humid, sh) = built_store(&be, "h2", 6);
    let region = Region::new(vec![(0, 48), (0, 96)]);
    let exec = ParallelExecutor::serial();
    let out = select_then_fetch(
        &st,
        &sh,
        (0.0, f64::MAX),
        Some(region),
        PlodLevel::FULL,
        &exec,
    )
    .unwrap();
    // Selection = all positive-temperature points in the upper half.
    let want: Vec<u64> = temp
        .iter()
        .enumerate()
        .filter(|&(i, &t)| i / 96 < 48 && t >= 0.0)
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(out.result.positions(), want);
    for (&p, &v) in out
        .result
        .positions()
        .iter()
        .zip(out.result.values().unwrap())
    {
        assert_eq!(v, humid[p as usize]);
    }
}

#[test]
fn plod_and_subset_multires_end_to_end() {
    let be = MemBackend::new();
    let (values, store) = built_store(&be, "mr", 7);
    let exec = ParallelExecutor::serial();

    // PLoD: error shrinks as bytes grow; I/O grows.
    let region = Region::full(&[96, 96]);
    let mut last_err = f64::MAX;
    let mut last_bytes = 0u64;
    for level in [1u8, 3, 7] {
        let (res, m) = plod_value_query(
            &store,
            region.clone(),
            PlodLevel::new(level).unwrap(),
            &exec,
        )
        .unwrap();
        let err = res
            .positions()
            .iter()
            .zip(res.values().unwrap())
            .map(|(&p, &v)| ((v - values[p as usize]) / values[p as usize]).abs())
            .fold(0.0f64, f64::max);
        assert!(err <= last_err, "error must not grow with precision");
        assert!(m.data_bytes > last_bytes, "bytes must grow with precision");
        last_err = err;
        last_bytes = m.data_bytes;
    }
    assert_eq!(last_err, 0.0, "full precision must be exact");

    // Subset-based: prefix levels nest and the top level is complete.
    let (l0, _) = subset_value_query(&store, 3, 0, &exec).unwrap();
    let (l2, _) = subset_value_query(&store, 3, 2, &exec).unwrap();
    assert!(l0.len() < l2.len());
    assert_eq!(l2.len(), values.len());
    let l0_set: std::collections::HashSet<u64> = l0.positions().iter().copied().collect();
    let l2_set: std::collections::HashSet<u64> = l2.positions().iter().copied().collect();
    assert!(l0_set.is_subset(&l2_set));
}
