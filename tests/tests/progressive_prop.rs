//! Property-based and fault-injection tests for the progressive
//! byte-group ladder:
//!
//! * the per-step error bound is monotonically non-increasing;
//! * a cold ladder's per-step `bytes_read` sum to exactly the one-shot
//!   query's `bytes_read` (same extents, different order);
//! * the final step is byte-identical to the one-shot answer in every
//!   execution mode (serial, threaded, cached, fused);
//! * a damaged non-base part extent caps the ladder through the
//!   degradation path, matching the one-shot degraded query's report
//!   and result bit for bit.

use mloc::prelude::*;
use mloc::{MlocStore, QueryResult};
use mloc_pfs::{BitFlip, CostModel, FaultBackend, FaultPlan, MemBackend, StorageBackend};
use proptest::prelude::*;
use std::sync::Arc;

const DS: &str = "pg";
const VAR: &str = "v";

/// Deterministic field with enough value spread to fill every bin.
fn field(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Mixed magnitudes and signs, no zeros or subnormals.
            let m = 1.0 + (state % 1_000_000) as f64 / 1_000_000.0;
            let e = ((state >> 20) % 13) as i32 - 6;
            let s = if state & (1 << 40) != 0 { -1.0 } else { 1.0 };
            s * m * 2f64.powi(e)
        })
        .collect()
}

fn build_into(be: &impl StorageBackend, seed: u64) -> Vec<f64> {
    let values = field(seed, 32 * 32);
    let config = MlocConfig::builder(vec![32, 32])
        .chunk_shape(vec![8, 8])
        .num_bins(4)
        .build();
    build_variable(be, DS, VAR, &values, &config).unwrap();
    values
}

fn bits(res: &QueryResult) -> (Vec<u64>, Vec<u64>) {
    (
        res.positions().to_vec(),
        res.values()
            .map(|vs| vs.iter().map(|v| v.to_bits()).collect())
            .unwrap_or_default(),
    )
}

/// A family of value-bearing queries with varied constraint shapes.
fn query_strategy() -> impl Strategy<Value = Query> {
    let regions = (0usize..16, 1usize..17, 0usize..16, 1usize..17).prop_map(|(a, la, b, lb)| {
        Region::new(vec![
            (a * 2, (a * 2 + la * 2).min(32)),
            (b * 2, (b * 2 + lb * 2).min(32)),
        ])
    });
    let levels = 1u8..=7;
    (0u8..3, regions, 0.0f64..32.0, levels).prop_map(|(kind, region, pivot, lvl)| {
        let plod = PlodLevel::new(lvl).unwrap();
        let lo = -pivot - 0.5;
        let hi = pivot + 0.25;
        match kind {
            0 => Query::values_in(region).with_plod(plod),
            1 => Query::values_where(lo, hi).with_plod(plod),
            _ => Query::values_where(lo, hi)
                .with_region(region)
                .with_plod(plod),
        }
    })
}

/// Run the ladder to completion, checking monotonicity along the way.
/// Returns the total bytes read and the final result.
fn drain(pq: &mut mloc::ProgressiveQuery<'_, '_>) -> u64 {
    let mut total = pq.steps()[0].bytes_read;
    let mut prev = f64::INFINITY;
    for s in pq.steps() {
        assert!(s.error_bound <= prev, "bound grew at step {}", s.step);
        prev = s.error_bound;
    }
    while let Some(s) = pq.next_refinement().unwrap() {
        assert!(
            s.error_bound <= prev,
            "bound grew at step {}: {} > {}",
            s.step,
            s.error_bound,
            prev
        );
        prev = s.error_bound;
        total += s.bytes_read;
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold serial ladder: byte-sum parity with the one-shot query and
    /// bit parity of the final answer; warm cached ladder: refinements
    /// read nothing the one-shot warm-up didn't already cache.
    #[test]
    fn ladder_matches_one_shot(seed in 1u64..5_000, q in query_strategy()) {
        let be = MemBackend::new();
        build_into(&be, seed);
        let store = MlocStore::open(&be, DS, VAR).unwrap();
        let (oneshot, om) = store.query_with_metrics(&q).unwrap();
        let want = bits(&oneshot);

        let mut pq = store.query_progressive(&q).unwrap();
        let total = drain(&mut pq);
        prop_assert!(pq.is_done());
        prop_assert_eq!(total, om.bytes_read, "cold ladder byte-sum parity");
        prop_assert_eq!(pq.metrics().bytes_read, om.bytes_read);
        prop_assert_eq!(bits(pq.result()), want.clone());
        // The bound lands exactly on the query's target level.
        let target_bound = if q.wants_values() {
            mloc::plod::relative_error_bound(q.plod)
        } else {
            0.0
        };
        prop_assert_eq!(pq.current_error_bound(), target_bound);

        // Warm ladder behind a shared cache: after a one-shot warm-up,
        // refinement steps are served from the cache (data extents are
        // cached per part, so only never-fetched bytes would be read).
        let mut warm_store = MlocStore::open(&be, DS, VAR).unwrap();
        warm_store.set_cache(Some(Arc::new(BlockCache::with_budget_mb(64))));
        warm_store.query_serial(&q).unwrap();
        let mut warm = warm_store.query_progressive(&q).unwrap();
        drain(&mut warm);
        prop_assert_eq!(bits(warm.result()), want);
        let refine_read: u64 = warm.steps().iter().skip(1).map(|s| s.bytes_read).sum();
        prop_assert_eq!(refine_read, 0, "warm refinements must be cache-served");
    }

    /// The final result is byte-identical across every execution mode.
    #[test]
    fn final_step_is_identical_in_every_exec_mode(seed in 1u64..5_000, q in query_strategy()) {
        let be = MemBackend::new();
        build_into(&be, seed);
        let store = MlocStore::open(&be, DS, VAR).unwrap();
        let want = bits(&store.query_serial(&q).unwrap());

        // Serial, threaded(4), cached, fused — one ladder each.
        let run = |store: &MlocStore<'_>, exec: &ParallelExecutor| {
            let mut pq = exec.progressive(store, &q).unwrap();
            pq.run_to_completion().unwrap();
            bits(pq.result())
        };
        prop_assert_eq!(run(&store, &ParallelExecutor::serial()), want.clone());
        let threaded = ParallelExecutor::new(4, CostModel::default()).threaded(true);
        prop_assert_eq!(run(&store, &threaded), want.clone());
        let mut cached = MlocStore::open(&be, DS, VAR).unwrap();
        cached.set_cache(Some(Arc::new(BlockCache::with_budget_mb(64))));
        prop_assert_eq!(run(&cached, &ParallelExecutor::serial()), want.clone());
        // Run the cached ladder again: now every refinement is warm.
        prop_assert_eq!(run(&cached, &ParallelExecutor::serial()), want.clone());
        let mut fused = MlocStore::open(&be, DS, VAR).unwrap();
        fused.set_fusion(Some(Arc::new(ExtentFuser::with_window_mb(16))));
        prop_assert_eq!(run(&fused, &ParallelExecutor::serial()), want);
    }
}

/// Locate the on-disk extent of one non-base PLoD part unit.
fn part_extent(be: &impl StorageBackend, bin: usize, part: usize) -> (String, u64, u32) {
    let idx_file = format!("{DS}/{VAR}/bin{bin:04}.idx");
    let raw = be.read(&idx_file, 0, be.len(&idx_file).unwrap()).unwrap();
    let idx = mloc::index::BinIndex::decode_header(&raw).unwrap();
    let chunk = idx
        .chunks
        .iter()
        .find(|c| c.count > 0)
        .expect("bin has a populated chunk");
    let loc = chunk.units[part];
    assert!(loc.clen > 0, "part unit is empty");
    (format!("{DS}/{VAR}/bin{bin:04}.dat"), loc.offset, loc.clen)
}

/// A damaged non-base part extent caps the ladder instead of failing
/// it, and the capped ladder matches the one-shot degraded query:
/// same events, same (nonzero) error bound, bit-identical values.
#[test]
fn faulted_extent_caps_ladder_matching_one_shot_degradation() {
    let clean = MemBackend::new();
    build_into(&clean, 77);
    const PART: usize = 4;
    let (dat, off, clen) = part_extent(&clean, 1, PART);

    let mut plan = FaultPlan::none();
    plan.flips.push(BitFlip {
        file: dat,
        // Mid-extent: inside the checksummed payload.
        offset: off + u64::from(clen) / 2,
        mask: 0x20,
    });
    let fb = FaultBackend::new(MemBackend::new(), plan);
    build_into(&fb, 77);

    let store = MlocStore::open(&fb, DS, VAR).unwrap();
    let q = Query::values_where(f64::MIN, f64::MAX);
    let (oneshot, om) = store.query_with_metrics(&q).unwrap();
    assert!(om.degradation.is_degraded(), "flip missed the read path");
    assert!(om.degradation.error_bound() > 0.0);

    let mut pq = store.query_progressive(&q).unwrap();
    pq.run_to_completion().unwrap();
    let m = pq.metrics();
    assert!(m.degradation.is_degraded());
    // The ladder reports the same loss with the same bound...
    assert_eq!(m.degradation.error_bound(), om.degradation.error_bound());
    assert_eq!(
        m.degradation.affected_points(),
        om.degradation.affected_points()
    );
    let key = |e: &mloc::DegradationEvent| (e.bin, e.chunk_rank, e.lost_part);
    let mut got: Vec<_> = m.degradation.events.iter().map(key).collect();
    let mut want: Vec<_> = om.degradation.events.iter().map(key).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);
    // ...the final bound is frozen at the capped level, not 0...
    assert_eq!(pq.current_error_bound(), om.degradation.error_bound());
    assert!(pq.steps().last().unwrap().capped_units > 0);
    // ...and the degraded values are bit-identical to the one-shot
    // degraded assembly.
    assert_eq!(bits(pq.result()), bits(&oneshot));
}

/// With degradation disallowed, the ladder fails on the damaged
/// refinement exactly like the one-shot query does.
#[test]
fn faulted_extent_fails_ladder_when_degradation_disallowed() {
    let clean = MemBackend::new();
    build_into(&clean, 78);
    let (dat, off, clen) = part_extent(&clean, 0, 3);
    let mut plan = FaultPlan::none();
    plan.flips.push(BitFlip {
        file: dat,
        offset: off + u64::from(clen) / 2,
        mask: 0x02,
    });
    let fb = FaultBackend::new(MemBackend::new(), plan);
    build_into(&fb, 78);

    let store = MlocStore::open(&fb, DS, VAR).unwrap();
    let q = Query::values_where(f64::MIN, f64::MAX);
    let exec = ParallelExecutor::serial().allow_degraded(false);
    assert!(exec.execute(&store, &q).is_err());
    // The ladder surfaces the same corruption — at step 0 if the
    // damaged extent falls inside a coalesced base read, otherwise on
    // the refinement pull that needs it.
    let err = match exec.progressive(&store, &q) {
        Err(e) => e,
        Ok(mut pq) => pq.run_to_completion().unwrap_err(),
    };
    assert!(err.is_corruption(), "wrong error class: {err}");
}
