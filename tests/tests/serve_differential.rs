//! Concurrency differential for the session service: a mixed
//! multi-tenant workload (VC, SC, combined, multi-resolution) must
//! answer byte-identically whether its sessions run (1) serially one
//! per window, (2) concurrently without fusion, or (3) concurrently
//! with cross-session extent fusion — and fusion must only ever
//! *reduce* the bytes read from the PFS, never change an answer.
//!
//! The invariant that makes the byte accounting checkable across all
//! modes: per session, `bytes_read + bytes_saved + fused_bytes_saved`
//! (the *logical* footprint) is plan-driven, so it is identical no
//! matter how the bytes were physically obtained.

use mloc::prelude::*;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::MemBackend;
use mloc_serve::{QueryServer, ServeConfig, SessionReport, SessionSpec};

const SHAPE: [usize; 2] = [96, 96];
const DS: &str = "sd";
const VAR: &str = "v";
const TENANTS: [&str; 2] = ["alice", "bob"];

fn build(be: &MemBackend) -> Vec<f64> {
    let field = gts_like_2d(SHAPE[0], SHAPE[1], 41);
    let config = MlocConfig::builder(SHAPE.to_vec())
        .chunk_shape(vec![24, 24])
        .num_bins(10)
        .build();
    build_variable(be, DS, VAR, field.values(), &config).unwrap();
    field.into_values()
}

/// 16 sessions over 8 distinct queries: each query is issued by both
/// tenants back to back, so every admission window contains duplicate
/// and overlapping want-lists — the situation fusion exists for. The
/// queries mix value-constrained, spatial, combined, and reduced-PLoD
/// value retrieval.
fn workload(values: &[f64]) -> Vec<SessionSpec> {
    let mut gen = QueryGen::new(values.to_vec(), SHAPE.to_vec(), 11);
    let mut queries = Vec::new();
    for i in 0..2 {
        let (lo, hi) = gen.value_constraint(0.10 + 0.05 * i as f64);
        let region = Region::new(gen.region(0.12));
        queries.push(Query::region(lo, hi));
        queries.push(Query::values_in(region.clone()));
        queries.push(Query::values_where(lo, hi).with_region(region.clone()));
        queries.push(Query::new(
            Some((lo, hi)),
            Some(region),
            PlodLevel::new(3).unwrap(),
            QueryOutput::Values,
        ));
    }
    let mut specs = Vec::new();
    for q in queries {
        for t in TENANTS {
            specs.push(SessionSpec::new(t, DS, VAR, q.clone()));
        }
    }
    specs
}

fn config(workers: usize, window: usize, cache_mb: u64, fusion: bool) -> ServeConfig {
    ServeConfig {
        workers,
        window,
        cache_mb,
        fusion,
        ..ServeConfig::default()
    }
}

fn assert_byte_identical(reports: &[SessionReport], reference: &[QueryResult], mode: &str) {
    assert_eq!(reports.len(), reference.len());
    for (r, want) in reports.iter().zip(reference) {
        let got = r
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{mode}: session {} failed: {e}", r.index));
        assert_eq!(
            got.positions(),
            want.positions(),
            "{mode}: session {} positions",
            r.index
        );
        match (got.values(), want.values()) {
            (None, None) => {}
            (Some(gv), Some(wv)) => {
                assert_eq!(gv.len(), wv.len(), "{mode}: session {} values", r.index);
                for (x, y) in gv.iter().zip(wv) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{mode}: session {} bits", r.index);
                }
            }
            _ => panic!("{mode}: session {} value presence differs", r.index),
        }
    }
}

fn logical(r: &SessionReport) -> u64 {
    let m = r.metrics.as_ref().expect("completed session has metrics");
    m.bytes_read + m.bytes_saved + m.fused_bytes_saved
}

fn sum_read(reports: &[SessionReport]) -> u64 {
    reports
        .iter()
        .map(|r| r.metrics.as_ref().expect("metrics").bytes_read)
        .sum()
}

#[test]
fn fused_concurrent_matches_serial_replay_and_reads_less() {
    let be = MemBackend::new();
    let values = build(&be);
    let specs = workload(&values);
    let store = MlocStore::open(&be, DS, VAR).unwrap();
    let reference: Vec<QueryResult> = specs
        .iter()
        .map(|s| store.query_serial(&s.query).unwrap())
        .collect();

    // (1) serial replay: one session per window, nothing shared.
    let serial = QueryServer::new(&be, config(1, 1, 0, false));
    let serial_reports = serial.run(&specs);
    assert_byte_identical(&serial_reports, &reference, "serial");

    // (2) concurrent, fusion off.
    let unfused = QueryServer::new(&be, config(4, 8, 0, false));
    let unfused_reports = unfused.run(&specs);
    assert_byte_identical(&unfused_reports, &reference, "concurrent unfused");

    // (3) concurrent, fusion on.
    let fused = QueryServer::new(&be, config(4, 8, 0, true));
    let fused_reports = fused.run(&specs);
    assert_byte_identical(&fused_reports, &reference, "concurrent fused");

    // Without cache or fusion, concurrency must not change what each
    // session reads at all.
    for (s, u) in serial_reports.iter().zip(&unfused_reports) {
        assert_eq!(
            s.metrics.as_ref().unwrap().bytes_read,
            u.metrics.as_ref().unwrap().bytes_read,
            "session {}: concurrency changed unfused bytes_read",
            s.index
        );
    }

    // The logical footprint of every session is mode-invariant.
    for ((s, u), f) in serial_reports
        .iter()
        .zip(&unfused_reports)
        .zip(&fused_reports)
    {
        assert_eq!(logical(s), logical(u), "session {} logical", s.index);
        assert_eq!(logical(s), logical(f), "session {} logical", s.index);
    }

    // Fusion strictly reduces PFS traffic on this workload: every
    // query is issued twice within one window, so the duplicate's
    // extents are fanned out from the first read deterministically.
    let unfused_bytes = sum_read(&unfused_reports);
    let fused_bytes = sum_read(&fused_reports);
    assert!(
        fused_bytes < unfused_bytes,
        "fusion did not reduce bytes read: fused {fused_bytes} vs unfused {unfused_bytes}"
    );
    let saved: u64 = fused_reports
        .iter()
        .map(|r| r.metrics.as_ref().unwrap().fused_bytes_saved)
        .sum();
    assert_eq!(
        fused_bytes + saved,
        unfused_bytes,
        "fused savings must exactly account for the traffic difference"
    );

    let stats = fused.fusion_stats().expect("fusion enabled");
    assert!(stats.fused_reads > 0, "no reads were fused: {stats:?}");
    assert!(stats.physical_reads > 0);
    assert_eq!(stats.failed_reads, 0);

    // Per-tenant usage reconciles with the summed per-session metrics.
    let usage = fused.usage();
    for tenant in TENANTS {
        let from_reports: u64 = fused_reports
            .iter()
            .filter(|r| r.tenant == tenant)
            .map(logical)
            .sum();
        assert_eq!(usage[tenant].logical_bytes, from_reports, "{tenant}");
        assert_eq!(usage[tenant].completed, (specs.len() / 2) as u64);
        assert_eq!(usage[tenant].rejected + usage[tenant].failed, 0);
    }
}

#[test]
fn fused_concurrency_is_byte_identical_across_exec_shapes() {
    let be = MemBackend::new();
    let values = build(&be);
    let specs = workload(&values);
    let store = MlocStore::open(&be, DS, VAR).unwrap();
    let reference: Vec<QueryResult> = specs
        .iter()
        .map(|s| store.query_serial(&s.query).unwrap())
        .collect();

    // serial ranks / threaded ranks / block cache on — fused
    // concurrency must be invisible in the answers under all of them.
    let shapes: Vec<(&str, ServeConfig)> = vec![
        ("serial-exec", config(4, 8, 0, true)),
        (
            "threaded-exec",
            ServeConfig {
                nranks: 4,
                threaded: true,
                ..config(4, 8, 0, true)
            },
        ),
        ("cached-exec", config(4, 8, 64, true)),
    ];
    for (mode, cfg) in shapes {
        let fused = QueryServer::new(&be, cfg.clone());
        let fused_reports = fused.run(&specs);
        assert_byte_identical(&fused_reports, &reference, mode);
        // Same shape with fusion off: the logical footprint per session
        // must be untouched by fusion (it is plan-driven per exec
        // shape — rank count changes how many footer reads happen, so
        // the comparison must hold the shape fixed).
        let plain = QueryServer::new(
            &be,
            ServeConfig {
                fusion: false,
                ..cfg
            },
        );
        let plain_reports = plain.run(&specs);
        assert_byte_identical(&plain_reports, &reference, mode);
        for (f, p) in fused_reports.iter().zip(&plain_reports) {
            assert_eq!(
                logical(f),
                logical(p),
                "{mode}: session {} logical footprint drifted under fusion",
                f.index
            );
        }
    }
}

#[test]
fn repeated_batches_keep_fusing_across_run_calls() {
    let be = MemBackend::new();
    let values = build(&be);
    let specs = workload(&values);
    let store = MlocStore::open(&be, DS, VAR).unwrap();
    let reference: Vec<QueryResult> = specs
        .iter()
        .map(|s| store.query_serial(&s.query).unwrap())
        .collect();

    let server = QueryServer::new(&be, config(4, 8, 0, true));
    let first = server.run(&specs);
    let again = server.run(&specs);
    assert_byte_identical(&first, &reference, "batch 1");
    assert_byte_identical(&again, &reference, "batch 2");
    let stats = server.fusion_stats().unwrap();
    assert!(stats.fused_reads > 0);
    let usage = server.usage();
    assert_eq!(
        usage.values().map(|u| u.completed).sum::<u64>(),
        2 * specs.len() as u64
    );
}
