//! Scheduler stress: a seeded storm of short sessions across several
//! tenants and variables, with tiny per-tenant budgets, fusion and the
//! shared cache on. The storm must (a) terminate (no deadlocks in the
//! single-flight rendezvous), (b) produce *identical per-session
//! outcomes when replayed* — budget rejections included, because
//! budgets are charged in plan-driven logical bytes — and (c) leave
//! counters that reconcile: per-tenant usage equals the summed
//! per-session metrics, and the shared cache's own hit counter equals
//! the sum reported by the sessions.

use mloc::prelude::*;
use mloc::QueryMetrics;
use mloc_datagen::{gts_like_2d, QueryGen};
use mloc_pfs::MemBackend;
use mloc_serve::{QueryServer, ServeConfig, SessionSpec, TenantBudget};

const DS: &str = "storm";
const SHAPE: [usize; 2] = [48, 48];
const TENANTS: [&str; 6] = ["t0", "t1", "t2", "t3", "t4", "t5"];

fn build(be: &MemBackend) -> Vec<Vec<f64>> {
    let mut all = Vec::new();
    for (var, seed) in [("v", 5u64), ("w", 9)] {
        let field = gts_like_2d(SHAPE[0], SHAPE[1], seed);
        let config = MlocConfig::builder(SHAPE.to_vec())
            .chunk_shape(vec![12, 12])
            .num_bins(6)
            .build();
        build_variable(be, DS, var, field.values(), &config).unwrap();
        all.push(field.into_values());
    }
    all
}

/// A deterministic storm: `n` sessions whose tenant, variable, and
/// query are drawn from a seeded xorshift stream.
fn storm(values: &[Vec<f64>], n: usize, seed: u64) -> Vec<SessionSpec> {
    // A pool of candidate queries per variable, from the seeded
    // generator the differential suites use.
    let vars = ["v", "w"];
    let pools: Vec<Vec<Query>> = values
        .iter()
        .map(|vals| {
            let mut gen = QueryGen::new(vals.clone(), SHAPE.to_vec(), seed ^ 0x9e37);
            let mut pool = Vec::new();
            for i in 0..4 {
                let (lo, hi) = gen.value_constraint(0.08 + 0.04 * i as f64);
                let region = Region::new(gen.region(0.15));
                pool.push(Query::region(lo, hi));
                pool.push(Query::values_where(lo, hi));
                pool.push(Query::values_in(region.clone()));
                pool.push(Query::values_where(lo, hi).with_region(region));
            }
            pool
        })
        .collect();

    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n)
        .map(|_| {
            let t = TENANTS[(next() % TENANTS.len() as u64) as usize];
            let vi = (next() % vars.len() as u64) as usize;
            let q = &pools[vi][(next() % pools[vi].len() as u64) as usize];
            SessionSpec::new(t, DS, vars[vi], q.clone())
        })
        .collect()
}

/// One comparable outcome line per session.
fn outcome_key(r: &mloc_serve::SessionReport) -> String {
    match &r.outcome {
        Ok(res) => {
            let m = r.metrics.as_ref().unwrap();
            format!(
                "{} {} ok {} logical={}",
                r.index,
                r.tenant,
                res.len(),
                m.bytes_read + m.bytes_saved + m.fused_bytes_saved
            )
        }
        Err(e) if e.is_budget() => format!("{} {} rejected", r.index, r.tenant),
        Err(e) => format!("{} {} failed {e}", r.index, r.tenant),
    }
}

fn run_storm(be: &MemBackend, specs: &[SessionSpec]) -> (Vec<String>, u64) {
    let config = ServeConfig {
        workers: 8,
        window: 16,
        cache_mb: 32,
        fusion: true,
        ..ServeConfig::default()
    };
    let mut server = QueryServer::new(be, config);
    // Three tenants on tight byte budgets; the rest unlimited.
    for t in &TENANTS[..3] {
        server.set_budget(t, TenantBudget::bytes(60_000));
    }
    let reports = server.run(specs);
    assert_eq!(reports.len(), specs.len());

    // Reconciliation: per-tenant usage vs summed per-session metrics.
    let usage = server.usage();
    for t in TENANTS {
        let mine: Vec<_> = reports.iter().filter(|r| r.tenant == t).collect();
        let u = &usage[t];
        assert_eq!(u.sessions, mine.len() as u64, "{t}: session count");
        assert_eq!(
            u.completed,
            mine.iter().filter(|r| r.outcome.is_ok()).count() as u64,
            "{t}: completed count"
        );
        assert_eq!(
            u.rejected,
            mine.iter()
                .filter(|r| r.outcome.as_ref().err().is_some_and(|e| e.is_budget()))
                .count() as u64,
            "{t}: rejected count"
        );
        assert_eq!(u.failed, 0, "{t}: unexpected failures");
        let metrics = |f: fn(&QueryMetrics) -> u64| -> u64 {
            mine.iter().filter_map(|r| r.metrics.as_ref()).map(f).sum()
        };
        assert_eq!(u.bytes_read, metrics(|m| m.bytes_read), "{t}: bytes_read");
        assert_eq!(
            u.bytes_saved,
            metrics(|m| m.bytes_saved),
            "{t}: bytes_saved"
        );
        assert_eq!(
            u.fused_bytes_saved,
            metrics(|m| m.fused_bytes_saved),
            "{t}: fused_bytes_saved"
        );
        assert_eq!(
            u.logical_bytes,
            metrics(|m| m.bytes_read + m.bytes_saved + m.fused_bytes_saved),
            "{t}: logical bytes"
        );
        assert_eq!(u.cache_hits, metrics(|m| m.cache_hits), "{t}: cache hits");
        assert_eq!(
            u.fused_reads,
            metrics(|m| m.fused_reads),
            "{t}: fused reads"
        );
    }

    // The budgeted tenants must actually trip, and unlimited tenants
    // must never be rejected.
    let rejected: u64 = TENANTS[..3].iter().map(|t| usage[*t].rejected).sum();
    assert!(rejected > 0, "tight budgets never tripped");
    for t in &TENANTS[3..] {
        assert_eq!(usage[*t].rejected, 0, "{t}: rejected without a budget");
    }

    // The shared cache's own ledger equals what the sessions reported.
    let cache = server.cache_stats().expect("cache enabled");
    let session_hits: u64 = reports
        .iter()
        .filter_map(|r| r.metrics.as_ref())
        .map(|m| m.cache_hits)
        .sum();
    assert_eq!(cache.hits, session_hits, "cache ledger drifted");

    let fused_total: u64 = reports
        .iter()
        .filter_map(|r| r.metrics.as_ref())
        .map(|m| m.fused_reads)
        .sum();
    (reports.iter().map(outcome_key).collect(), fused_total)
}

#[test]
fn seeded_storm_is_deterministic_and_reconciles() {
    let be = MemBackend::new();
    let values = build(&be);
    let specs = storm(&values, 300, 2024);

    let (first, _) = run_storm(&be, &specs);
    for round in 0..2 {
        let (again, _) = run_storm(&be, &specs);
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a, b, "round {round}: per-session outcome drifted");
        }
    }
}

#[test]
fn storm_under_tiny_windows_still_terminates_and_fuses() {
    // Degenerate scheduling shapes: more workers than tenant groups,
    // window smaller than the tenant count, single worker.
    let be = MemBackend::new();
    let values = build(&be);
    let specs = storm(&values, 120, 7);
    for (workers, window) in [(16, 3), (1, 16), (4, 1)] {
        let config = ServeConfig {
            workers,
            window,
            cache_mb: 0,
            fusion: true,
            ..ServeConfig::default()
        };
        let server = QueryServer::new(&be, config);
        let reports = server.run(&specs);
        assert!(
            reports.iter().all(|r| r.outcome.is_ok()),
            "workers={workers} window={window}: session failed"
        );
    }
}
