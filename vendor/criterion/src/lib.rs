//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this vendored
//! crate provides the criterion API shape the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`)
//! backed by a simple wall-clock harness: per benchmark it warms up,
//! takes `sample_size` timed samples, and prints the median with
//! throughput when configured. No statistics beyond that.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark id (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// True when the bench binary was invoked with `--test` (criterion's
/// smoke mode: run every benchmark once, skip timed sampling). Lets
/// CI validate benches cheaply and fail on panics.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, taking `sample_size` samples after one warm-up run.
    /// In `--test` mode the warm-up run is the only execution.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        if test_mode() {
            return;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn report(id: &str, median: Duration, throughput: Option<Throughput>) {
    if test_mode() {
        println!("{id:<48} ok (test mode, 1 run)");
        return;
    }
    let per_iter = median.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
            format!("  {:10.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:10.0} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    if per_iter >= 1e-3 {
        println!("{id:<48} {:10.3} ms{rate}", per_iter * 1e3);
    } else {
        println!("{id:<48} {:10.3} µs{rate}", per_iter * 1e6);
    }
}

/// A named group of benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let median = b.median();
        report(&format!("{}/{id}", self.name), median, self.throughput);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        let median = b.median();
        report(&format!("{}/{id}", self.name), median, self.throughput);
        self
    }

    /// End the group (prints nothing; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        let median = b.median();
        report(id, median, None);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Bytes(1024));
        let mut runs = 0usize;
        g.bench_function("inc", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
