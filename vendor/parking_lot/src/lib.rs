//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no registry access, so this vendored
//! crate wraps `std::sync` primitives behind the `parking_lot` API
//! shape the workspace uses: non-poisoning `lock()` / `read()` /
//! `write()` that return guards directly. Poison from a panicked
//! holder is ignored (the data is still returned), which matches
//! parking_lot's no-poisoning semantics closely enough for this
//! workspace.

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.read().iter().sum::<i32>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
