//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this vendored
//! crate re-implements the subset of the proptest API the workspace
//! uses: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`,
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`bool::ANY`], [`arbitrary::any`],
//! and [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in two deliberate ways:
//! no shrinking (a failing case panics with the plain assertion
//! message), and the per-test RNG seed is derived from the test's
//! module path + name, so failures are reproducible run-to-run.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic xoshiro256++ source used to generate cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary label (test name) via FNV-1a and
        /// SplitMix64 expansion.
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A strategy yielding `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` strategies for primitives.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generate one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Floats reinterpret raw bits so every class (normal, subnormal,
    // zero, infinity, NaN) appears — codec roundtrip tests compare
    // via to_bits and must survive all of them.
    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a size
    /// range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub use arbitrary::any;

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declare property tests: each `#[test] fn name(pat in strategy, …)`
/// item becomes a normal test running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])+
      fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strat,)+);
            for __case in 0..config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in 0f64..1.0, c in 1u8..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_len_in_bounds(v in crate::collection::vec(any::<bool>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
        }

        #[test]
        fn map_and_flat_map(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
