//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored
//! crate provides the (small) subset of the real `rand` 0.9 API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::random_range`] over integer and float ranges. The
//! generator is xoshiro256++ seeded through SplitMix64 — not the real
//! StdRng (ChaCha12), but deterministic, well distributed, and more
//! than adequate for test-data generation.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience constructor).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * u01 as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * u01 as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(8);
        let different =
            (0..20).any(|_| a.random_range(0..1_000_000) != c.random_range(0..1_000_000));
        assert!(different);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let v: usize = rng.random_range(5..=5);
            assert_eq!(v, 5);
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.random_range(-50..=50);
            assert!((-50..=50).contains(&i));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
